package synth

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/tso"
)

// This file is the synthesis driver: propose the irredundant hitting
// sets of the known constraints, verify each proposal exhaustively on
// the parallel exploration engine, extract a new constraint from each
// counterexample, and repeat until the frontier has no untested member.
// Every verdict is memoized by placement key, so a placement is
// model-checked at most once across the CEGAR loop and the final
// minimality pass.

// synthesizer carries the per-run state of one Synthesize call.
type synthesizer struct {
	prob   Problem
	opts   Options
	sites  []Site
	bySite map[siteKey]Site

	tested map[string]*verdict
	res    *Result
}

// verdict is one memoized verification outcome.
type verdict struct {
	res     litmus.Result
	spliced []*tso.Spliced
	build   func() *tso.Machine
}

func (v *verdict) sat() bool {
	return v.res.Violations == 0 && v.res.Deadlocks == 0 && !v.res.Truncated
}

// spliceCandidate applies a placement to every thread's base program.
func spliceCandidate(progs []*tso.Program, p Placement, scratch tso.Reg) []*tso.Spliced {
	out := make([]*tso.Spliced, len(progs))
	for t, prog := range progs {
		out[t] = tso.Splice(prog, p.edits(t, scratch))
	}
	return out
}

func builderFor(cfg arch.Config, spliced []*tso.Spliced) func() *tso.Machine {
	progs := make([]*tso.Program, len(spliced))
	for i, sp := range spliced {
		progs[i] = sp.Prog
	}
	return func() *tso.Machine { return tso.NewMachine(cfg, progs...) }
}

// verifyOne model-checks a single candidate placement.
func (s *synthesizer) verifyOne(p Placement) *verdict {
	spliced := spliceCandidate(s.prob.Programs, p, s.opts.scratch())
	build := builderFor(s.prob.Config, spliced)
	r := litmus.Explore(build, litmus.Options{
		Properties:      []litmus.Property{s.prob.Property},
		Workers:         s.opts.Workers,
		MaxStates:       s.opts.MaxStates,
		StopOnViolation: true,
		// Partial-order reduction preserves exactly what the verifier
		// needs — violation reachability for the stable safety property —
		// while shrinking each query's state space.
		Reduction: true,
	})
	return &verdict{res: r, spliced: spliced, build: build}
}

// verifyBatch verifies one frontier concurrently (bounded by
// Options.Parallel) and memoizes each verdict. Results align with batch
// order, so downstream constraint accumulation is deterministic
// regardless of verification scheduling.
func (s *synthesizer) verifyBatch(batch []Placement) []*verdict {
	par := s.opts.Parallel
	if par <= 0 || par > len(batch) {
		par = len(batch)
	}
	verdicts := make([]*verdict, len(batch))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, p := range batch {
		wg.Add(1)
		go func(i int, p Placement) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			verdicts[i] = s.verifyOne(p)
		}(i, p)
	}
	wg.Wait()
	for i, p := range batch {
		s.tested[p.key()] = verdicts[i]
		s.res.CandidatesChecked++
		s.res.StatesExplored += verdicts[i].res.States
	}
	return verdicts
}

// Synthesize runs counterexample-guided fence synthesis for the problem
// and returns the minimal repairing placements with the cost-optimal one
// designated. It returns an error (wrapping ErrBudget) if any
// verification exceeds Options.MaxStates — a truncated exploration
// proves nothing, so no placement is reported off the back of one.
func Synthesize(prob Problem, opts Options) (*Result, error) {
	if len(prob.Programs) == 0 {
		return nil, fmt.Errorf("synth: problem %q has no programs", prob.Name)
	}
	if prob.Property == nil {
		return nil, fmt.Errorf("synth: problem %q has no property", prob.Name)
	}
	if prob.Config.Procs < len(prob.Programs) {
		return nil, fmt.Errorf("synth: problem %q: %d programs for %d processors",
			prob.Name, len(prob.Programs), prob.Config.Procs)
	}

	start := time.Now()
	sites := Sites(prob.Programs)
	s := &synthesizer{
		prob:   prob,
		opts:   opts,
		sites:  sites,
		bySite: make(map[siteKey]Site, len(sites)),
		tested: make(map[string]*verdict),
		res:    &Result{Problem: prob.Name, Sites: sites},
	}
	for _, site := range sites {
		s.bySite[siteKey{site.Thread, site.Instr}] = site
	}
	res := s.res
	defer func() {
		res.Elapsed = time.Since(start)
		res.FillObs()
	}()

	var (
		constraints []constraint
		conKeys     = make(map[string]struct{})
		satisfying  []Placement
		lastUnsat   *verdict
	)

	for {
		frontier := minimalHittingSets(constraints, opts.MaxFences)
		var todo []Placement
		for _, p := range frontier {
			if _, done := s.tested[p.key()]; !done {
				todo = append(todo, p)
			}
		}
		if len(todo) == 0 {
			break
		}
		res.Rounds++

		for i, v := range s.verifyBatch(todo) {
			p := todo[i]
			if v.res.Truncated {
				return nil, fmt.Errorf("%w: candidate %v stopped after %d states",
					ErrBudget, p, v.res.States)
			}
			if v.res.Deadlocks > 0 {
				return nil, fmt.Errorf("synth: candidate %v introduces %d deadlocked states",
					p, v.res.Deadlocks)
			}
			if v.sat() {
				satisfying = append(satisfying, p)
				continue
			}
			res.Counterexamples++
			lastUnsat = v
			ex := analyzeTrace(v.build, v.spliced, v.res.ViolationTrace)
			if !ex.windows {
				// The property fails without any store/load reordering:
				// no fence of any kind can help.
				res.Unrepairable = true
				res.Counterexample = litmus.FormatTrace(v.build, v.res.ViolationTrace)
				return res, nil
			}
			c := buildConstraint(ex, s.bySite, p, opts)
			if len(c) == 0 {
				// Reordering windows exist but no allowed atom is
				// strictly stronger than this candidate at any of them.
				if p.Len() == 0 {
					// Even the full lattice above the empty placement is
					// powerless under the allowed kinds.
					res.Unrepairable = true
					res.Counterexample = litmus.FormatTrace(v.build, v.res.ViolationTrace)
					return res, nil
				}
				continue // candidate dead; memoization keeps it untried
			}
			if _, dup := conKeys[constraintKey(c)]; !dup {
				conKeys[constraintKey(c)] = struct{}{}
				constraints = append(constraints, c)
			}
		}
	}

	if len(satisfying) == 0 {
		res.Unrepairable = true
		if lastUnsat != nil {
			res.Counterexample = litmus.FormatTrace(lastUnsat.build, lastUnsat.res.ViolationTrace)
		}
		return res, nil
	}

	satisfying = subsetMinimal(satisfying)
	if !opts.SkipMinimalityCheck {
		satisfying = s.verifyMinimality(satisfying)
	}

	weights := opts.weights(len(prob.Programs))
	cm := prob.Config.Cost
	if opts.Cost != nil {
		cm = *opts.Cost
	}
	for _, p := range satisfying {
		res.Minimal = append(res.Minimal, Candidate{
			Placement: p,
			Cost:      placementCost(p, prob.Programs, cm, weights),
			States:    s.tested[p.key()].res.States,
		})
	}
	sort.Slice(res.Minimal, func(i, j int) bool {
		a, b := res.Minimal[i], res.Minimal[j]
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		if len(a.Placement) != len(b.Placement) {
			return len(a.Placement) < len(b.Placement)
		}
		return a.Placement.key() < b.Placement.key()
	})
	res.Optimal = &res.Minimal[0]
	return res, nil
}

// subsetMinimal drops any satisfying placement that strictly contains
// another satisfying placement (same atoms plus more).
func subsetMinimal(ps []Placement) []Placement {
	var out []Placement
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i != j && len(q) < len(p) && q.subsetOf(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// verifyMinimality model-checks every one-atom removal of each reported
// placement. Counterexample pruning rests on the assumption that fences
// only restrict behaviour; this pass replaces that assumption with
// checked fact for the reported results. A weakening that verifies safe
// flags AssumptionViolated and replaces its parent in the report (the
// parent was safe but not minimal).
func (s *synthesizer) verifyMinimality(satisfying []Placement) []Placement {
	// Collect every untested weakening across all placements, verify
	// them as one parallel batch, then judge.
	var unknown []Placement
	seen := make(map[string]struct{})
	for _, p := range satisfying {
		for i := range p {
			w := p.without(i)
			k := w.key()
			if _, done := s.tested[k]; done {
				continue
			}
			if _, dup := seen[k]; dup {
				continue
			}
			seen[k] = struct{}{}
			unknown = append(unknown, w)
		}
	}
	if len(unknown) > 0 {
		s.verifyBatch(unknown)
		for _, v := range unknown {
			if !s.tested[v.key()].sat() {
				s.res.Counterexamples++
			}
		}
	}

	var out []Placement
	for _, p := range satisfying {
		minimal := true
		for i := range p {
			w := p.without(i)
			if s.tested[w.key()].sat() {
				s.res.AssumptionViolated = true
				minimal = false
				out = append(out, w)
			}
		}
		if minimal {
			out = append(out, p)
		}
	}
	return subsetMinimal(dedupePlacements(out))
}

func dedupePlacements(ps []Placement) []Placement {
	seen := make(map[string]struct{}, len(ps))
	var out []Placement
	for _, p := range ps {
		if _, dup := seen[p.key()]; dup {
			continue
		}
		seen[p.key()] = struct{}{}
		out = append(out, p)
	}
	return out
}
