package synth

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/tso"
)

// This file is the synthesis driver: propose the irredundant hitting
// sets of the known constraints, verify each proposal on the parallel
// exploration engine, extract a new constraint from each
// counterexample, and repeat until the frontier has no untested member.
// Every verdict is memoized by placement key, so a placement is
// model-checked at most once across the CEGAR loop and the final
// minimality pass.
//
// Two accelerators bolt onto the plain loop, both strictly optional
// (zero Options disable them) and both quarantined from the result's
// guarantees:
//
//   - Options.ReorderBound screens each candidate with a
//     reorder-bounded exploration before the exact reduced check. The
//     bounded semantics under-approximates TSO, so a bounded violation
//     is a real violation and the candidate is refuted without an exact
//     run; a bounded-safe screen proves nothing and always falls
//     through. SAT verdicts therefore only ever come from exact runs,
//     and Unrepairable/ErrBudget are only ever concluded from exact
//     runs (a bounded trace that *suggests* unrepairability triggers an
//     exact re-verification first).
//
//   - Options.Prefilter seeds the constraint set with static critical
//     cycles and prunes off-cycle sites from the lattice (static.go).
//     The empty placement is still verified first — a safe program
//     reports zero fences no matter what the static analysis imagined —
//     pruned sites are restored the moment a counterexample implicates
//     one, and the minimality pass strips any fence only a seed (not a
//     counterexample) demanded, without flagging AssumptionViolated.

// synthesizer carries the per-run state of one Synthesize call.
type synthesizer struct {
	prob   Problem
	opts   Options
	sites  []Site
	bySite map[siteKey]Site
	// pruned holds the sites the static prefilter removed from bySite;
	// restoreImplicated moves them back when a counterexample's repair
	// window lands on one.
	pruned map[siteKey]Site

	// cexCons are the counterexample-derived constraints only (no
	// prefilter seeds): the set whose violation by a safe weakening
	// means the monotonicity assumption actually failed.
	cexCons []constraint

	tested map[string]*verdict
	res    *Result
}

// verdict is one memoized verification outcome.
type verdict struct {
	res     litmus.Result
	spliced []*tso.Spliced
	build   func() *tso.Machine

	// bounded marks a verdict produced by the reorder-bounded screen:
	// always a violation (safe screens fall through to the exact
	// engine, so SAT verdicts are exact by construction).
	bounded bool
	// screened marks that the bounded screen ran at all;
	// screenStates counts the states it burned when it missed and the
	// exact run had to follow.
	screened     bool
	screenStates int
}

func (v *verdict) sat() bool {
	return v.res.Violations == 0 && v.res.Deadlocks == 0 && !v.res.Truncated
}

// spliceCandidate applies a placement to every thread's base program.
func spliceCandidate(progs []*tso.Program, p Placement, scratch tso.Reg) []*tso.Spliced {
	out := make([]*tso.Spliced, len(progs))
	for t, prog := range progs {
		out[t] = tso.Splice(prog, p.edits(t, scratch))
	}
	return out
}

func builderFor(cfg arch.Config, spliced []*tso.Spliced) func() *tso.Machine {
	progs := make([]*tso.Program, len(spliced))
	for i, sp := range spliced {
		progs[i] = sp.Prog
	}
	return func() *tso.Machine { return tso.NewMachine(cfg, progs...) }
}

// verifyOne model-checks a single candidate placement: the bounded
// screen first when Options.ReorderBound is set, the exact reduced
// check unless the screen already refuted the candidate.
func (s *synthesizer) verifyOne(p Placement) *verdict {
	spliced := spliceCandidate(s.prob.Programs, p, s.opts.scratch())
	build := builderFor(s.prob.Config, spliced)
	v := &verdict{spliced: spliced, build: build}
	if b := s.opts.ReorderBound; b > 0 {
		v.screened = true
		br := litmus.Explore(build, litmus.Options{
			Properties:      []litmus.Property{s.prob.Property},
			Workers:         s.opts.Workers,
			MaxStates:       s.opts.MaxStates,
			StopOnViolation: true,
			ReorderBound:    b,
			Model:           s.prob.Config.Model,
		})
		if br.Violations > 0 {
			// The bounded state graph is a subgraph of the exact one, so
			// this violation (and its trace) is real — even when the
			// bounded run was itself truncated.
			v.res = br
			v.bounded = true
			return v
		}
		v.screenStates = br.States
	}
	v.res = litmus.Explore(build, litmus.Options{
		Properties:      []litmus.Property{s.prob.Property},
		Workers:         s.opts.Workers,
		MaxStates:       s.opts.MaxStates,
		StopOnViolation: true,
		Model:           s.prob.Config.Model,
		// Partial-order reduction preserves exactly what the verifier
		// needs — violation reachability for the stable safety property —
		// while shrinking each query's state space. (Under PSO the
		// engine forces reduction off; the flag is then inert.)
		Reduction: true,
	})
	return v
}

// record books a freshly-computed verdict into the memo table and the
// result counters.
func (s *synthesizer) record(p Placement, v *verdict) {
	s.tested[p.key()] = v
	s.res.CandidatesChecked++
	s.res.StatesExplored += v.res.States + v.screenStates
	if v.screened {
		s.res.BoundedChecks++
	}
	if v.bounded {
		s.res.BoundedHits++
	} else {
		s.res.ExactChecks++
	}
}

// verifyBatch verifies one frontier concurrently (bounded by
// Options.Parallel) and memoizes each verdict. Results align with batch
// order, so downstream constraint accumulation is deterministic
// regardless of verification scheduling.
func (s *synthesizer) verifyBatch(batch []Placement) []*verdict {
	par := s.opts.Parallel
	if par <= 0 || par > len(batch) {
		par = len(batch)
	}
	verdicts := make([]*verdict, len(batch))
	sem := make(chan struct{}, par)
	var wg sync.WaitGroup
	for i, p := range batch {
		wg.Add(1)
		go func(i int, p Placement) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			verdicts[i] = s.verifyOne(p)
		}(i, p)
	}
	wg.Wait()
	for i, p := range batch {
		s.record(p, verdicts[i])
	}
	return verdicts
}

// reverifyExact forces an exact (unbounded, reduced) verification of a
// placement whose screen verdict is about to support a terminal
// conclusion. The exact verdict replaces the memoized one. It errors on
// budget truncation, on introduced deadlocks, and — defensively — if
// the exact engine fails to reproduce a violation the bounded screen
// found, which the under-approximation contract makes impossible.
func (s *synthesizer) reverifyExact(p Placement) (*verdict, error) {
	spliced := spliceCandidate(s.prob.Programs, p, s.opts.scratch())
	build := builderFor(s.prob.Config, spliced)
	v := &verdict{spliced: spliced, build: build}
	v.res = litmus.Explore(build, litmus.Options{
		Properties:      []litmus.Property{s.prob.Property},
		Workers:         s.opts.Workers,
		MaxStates:       s.opts.MaxStates,
		StopOnViolation: true,
		Reduction:       true,
		Model:           s.prob.Config.Model,
	})
	s.record(p, v)
	if v.res.Truncated {
		return nil, fmt.Errorf("%w: candidate %v stopped after %d states",
			ErrBudget, p, v.res.States)
	}
	if v.res.Deadlocks > 0 {
		return nil, fmt.Errorf("synth: candidate %v introduces %d deadlocked states",
			p, v.res.Deadlocks)
	}
	if v.sat() {
		return nil, fmt.Errorf("synth: candidate %v: bounded violation not reproduced by the exact engine (reorder-bound under-approximation contract broken)", p)
	}
	s.res.Counterexamples++
	return v, nil
}

// restoreImplicated moves every pruned site implicated by the
// extraction's repair windows back into the candidate lattice,
// returning how many it restored. The static prefilter's pruning is
// heuristic; a real counterexample overrules it.
func (s *synthesizer) restoreImplicated(ex extraction) int {
	n := 0
	for k := range ex.repair {
		if site, ok := s.pruned[k]; ok {
			s.bySite[k] = site
			delete(s.pruned, k)
			n++
		}
	}
	s.res.RestoredSites += n
	return n
}

// Synthesize runs counterexample-guided fence synthesis for the problem
// and returns the minimal repairing placements with the cost-optimal one
// designated. It returns an error (wrapping ErrBudget) if any exact
// verification exceeds Options.MaxStates — a truncated exploration
// proves nothing, so no placement is reported off the back of one.
func Synthesize(prob Problem, opts Options) (*Result, error) {
	if len(prob.Programs) == 0 {
		return nil, fmt.Errorf("synth: problem %q has no programs", prob.Name)
	}
	if prob.Property == nil {
		return nil, fmt.Errorf("synth: problem %q has no property", prob.Name)
	}
	if prob.Config.Procs < len(prob.Programs) {
		return nil, fmt.Errorf("synth: problem %q: %d programs for %d processors",
			prob.Name, len(prob.Programs), prob.Config.Procs)
	}

	start := time.Now()
	sites := Sites(prob.Programs)
	s := &synthesizer{
		prob:   prob,
		opts:   opts,
		sites:  sites,
		bySite: make(map[siteKey]Site, len(sites)),
		pruned: make(map[siteKey]Site),
		tested: make(map[string]*verdict),
		res:    &Result{Problem: prob.Name, Sites: sites},
	}
	for _, site := range sites {
		s.bySite[siteKey{site.Thread, site.Instr}] = site
	}
	res := s.res
	defer func() {
		res.Elapsed = time.Since(start)
		res.FillObs()
	}()

	var (
		constraints []constraint
		conKeys     = make(map[string]struct{})
		satisfying  []Placement
		lastUnsat   *verdict
		lastUnsatP  Placement
	)

	addConstraint := func(c constraint, fromCex bool) {
		if _, dup := conKeys[constraintKey(c)]; dup {
			return
		}
		conKeys[constraintKey(c)] = struct{}{}
		constraints = append(constraints, c)
		if fromCex {
			s.cexCons = append(s.cexCons, c)
		}
	}

	// handleUnsat digests one violating verdict for placement p:
	// extract the trace's reordering windows, restore any pruned sites
	// they implicate, and either record a new constraint, drop the
	// candidate as dead, or conclude Unrepairable. Terminal conclusions
	// (stop=true) are only drawn from exact verdicts: a bounded verdict
	// heading toward one is re-verified exactly first and the exact
	// trace re-analyzed.
	var handleUnsat func(p Placement, v *verdict) (stop bool, err error)
	handleUnsat = func(p Placement, v *verdict) (bool, error) {
		lastUnsat, lastUnsatP = v, p
		exactify := func() (bool, error) {
			nv, err := s.reverifyExact(p)
			if err != nil {
				return false, err
			}
			return handleUnsat(p, nv)
		}
		ex := analyzeTrace(v.build, v.spliced, v.res.ViolationTrace)
		if !ex.windows {
			// The property fails without any store/load reordering: no
			// fence of any kind can help. Conclude only from an exact run.
			if v.bounded {
				return exactify()
			}
			res.Unrepairable = true
			res.Counterexample = litmus.FormatTrace(v.build, v.res.ViolationTrace)
			return true, nil
		}
		c := buildConstraint(ex, s.bySite, p, s.opts)
		if len(c) == 0 && s.restoreImplicated(ex) > 0 {
			c = buildConstraint(ex, s.bySite, p, s.opts)
		}
		if len(c) == 0 {
			// Reordering windows exist but no allowed atom is strictly
			// stronger than this candidate at any of them.
			if p.Len() == 0 {
				// Even the full lattice above the empty placement is
				// powerless under the allowed kinds.
				if v.bounded {
					return exactify()
				}
				res.Unrepairable = true
				res.Counterexample = litmus.FormatTrace(v.build, v.res.ViolationTrace)
				return true, nil
			}
			return false, nil // candidate dead; memoization keeps it untried
		}
		addConstraint(c, true)
		return false, nil
	}

	if opts.Prefilter {
		info := prefilterAnalyze(prob.Programs)
		res.PrefilterCycles = len(info.cycleSites)
		if len(info.cycleSites) > 0 {
			// Verify the empty placement before believing any static
			// cycle: a program that is already safe must report zero
			// fences whatever the analysis imagined, and a violating one
			// hands the seeds a real counterexample to combine with.
			res.Rounds++
			v := s.verifyBatch([]Placement{{}})[0]
			if v.res.Truncated && !v.bounded {
				return nil, fmt.Errorf("%w: candidate %v stopped after %d states",
					ErrBudget, Placement{}, v.res.States)
			}
			if v.res.Deadlocks > 0 {
				return nil, fmt.Errorf("synth: candidate %v introduces %d deadlocked states",
					Placement{}, v.res.Deadlocks)
			}
			if v.sat() {
				satisfying = append(satisfying, Placement{})
			} else {
				res.Counterexamples++
				stop, err := handleUnsat(Placement{}, v)
				if err != nil {
					return nil, err
				}
				if stop {
					return res, nil
				}
				for _, c := range info.seedConstraints(s.bySite, opts) {
					addConstraint(c, false)
					res.PrefilterSeeds++
				}
				for _, site := range info.prunable(sites) {
					k := siteKey{site.Thread, site.Instr}
					delete(s.bySite, k)
					s.pruned[k] = site
				}
				res.PrunedSites = len(s.pruned)
			}
		}
	}

	for {
		frontier := minimalHittingSets(constraints, opts.MaxFences)
		var todo []Placement
		for _, p := range frontier {
			if _, done := s.tested[p.key()]; !done {
				todo = append(todo, p)
			}
		}
		if len(todo) == 0 {
			break
		}
		res.Rounds++

		for i, v := range s.verifyBatch(todo) {
			p := todo[i]
			if v.res.Truncated && !v.bounded {
				return nil, fmt.Errorf("%w: candidate %v stopped after %d states",
					ErrBudget, p, v.res.States)
			}
			if v.res.Deadlocks > 0 {
				return nil, fmt.Errorf("synth: candidate %v introduces %d deadlocked states",
					p, v.res.Deadlocks)
			}
			if v.sat() {
				satisfying = append(satisfying, p)
				continue
			}
			res.Counterexamples++
			stop, err := handleUnsat(p, v)
			if err != nil {
				return nil, err
			}
			if stop {
				return res, nil
			}
		}
	}

	if len(satisfying) == 0 {
		// Every hitting set of the accumulated constraints was refuted.
		// Each refutation is a real violation (bounded ones included),
		// but the reported witness must come from an exact run: a
		// screen-produced last counterexample is re-verified exactly.
		if lastUnsat != nil && lastUnsat.bounded {
			nv, err := s.reverifyExact(lastUnsatP)
			if err != nil {
				return nil, err
			}
			lastUnsat = nv
		}
		res.Unrepairable = true
		if lastUnsat != nil {
			res.Counterexample = litmus.FormatTrace(lastUnsat.build, lastUnsat.res.ViolationTrace)
		}
		return res, nil
	}

	satisfying = subsetMinimal(satisfying)
	if !opts.SkipMinimalityCheck {
		satisfying = s.verifyMinimality(satisfying)
	}

	weights := opts.weights(len(prob.Programs))
	cm := prob.Config.Cost
	if opts.Cost != nil {
		cm = *opts.Cost
	}
	for _, p := range satisfying {
		res.Minimal = append(res.Minimal, Candidate{
			Placement: p,
			Cost:      placementCost(p, prob.Programs, cm, weights),
			States:    s.tested[p.key()].res.States,
		})
	}
	sort.Slice(res.Minimal, func(i, j int) bool {
		a, b := res.Minimal[i], res.Minimal[j]
		if a.Cost != b.Cost {
			return a.Cost < b.Cost
		}
		if len(a.Placement) != len(b.Placement) {
			return len(a.Placement) < len(b.Placement)
		}
		return a.Placement.key() < b.Placement.key()
	})
	res.Optimal = &res.Minimal[0]
	return res, nil
}

// subsetMinimal drops any satisfying placement that strictly contains
// another satisfying placement (same atoms plus more).
func subsetMinimal(ps []Placement) []Placement {
	var out []Placement
	for i, p := range ps {
		dominated := false
		for j, q := range ps {
			if i != j && len(q) < len(p) && q.subsetOf(p) {
				dominated = true
				break
			}
		}
		if !dominated {
			out = append(out, p)
		}
	}
	return out
}

// hitsAllCex reports whether p hits every counterexample-derived
// constraint (prefilter seeds excluded).
func (s *synthesizer) hitsAllCex(p Placement) bool {
	for _, c := range s.cexCons {
		if !p.hits(c) {
			return false
		}
	}
	return true
}

// verifyMinimality model-checks the one-atom removals of each reported
// placement, iterating to a fixpoint: a substituted safe weakening is
// itself re-checked, so no reported placement retains any removable
// atom (the historical version stopped after one level and could leak a
// two-atoms-removable parent's half-weakened children as "minimal").
// Counterexample pruning rests on the assumption that fences only
// restrict behaviour; this pass replaces that assumption with checked
// fact for the reported results. A safe weakening that un-hits a
// counterexample-derived constraint flags AssumptionViolated — the
// monotonicity assumption demonstrably failed. A safe weakening that
// only un-hits prefilter seed constraints is the expected cleanup of a
// false-positive static cycle and is substituted silently.
func (s *synthesizer) verifyMinimality(satisfying []Placement) []Placement {
	var out []Placement
	work := satisfying
	for len(work) > 0 {
		// Collect every untested weakening across this level, verify
		// them as one parallel batch, then judge. Placements shrink by
		// one atom per level, so the loop terminates.
		var unknown []Placement
		seen := make(map[string]struct{})
		for _, p := range work {
			for i := range p {
				w := p.without(i)
				k := w.key()
				if _, done := s.tested[k]; done {
					continue
				}
				if _, dup := seen[k]; dup {
					continue
				}
				seen[k] = struct{}{}
				unknown = append(unknown, w)
			}
		}
		if len(unknown) > 0 {
			s.verifyBatch(unknown)
			for _, v := range unknown {
				if !s.tested[v.key()].sat() {
					s.res.Counterexamples++
				}
			}
		}

		var next []Placement
		for _, p := range work {
			minimal := true
			for i := range p {
				w := p.without(i)
				if s.tested[w.key()].sat() {
					minimal = false
					if !s.hitsAllCex(w) {
						s.res.AssumptionViolated = true
					}
					next = append(next, w)
				}
			}
			if minimal {
				out = append(out, p)
			}
		}
		work = dedupePlacements(next)
	}
	return subsetMinimal(dedupePlacements(out))
}

func dedupePlacements(ps []Placement) []Placement {
	seen := make(map[string]struct{}, len(ps))
	var out []Placement
	for _, p := range ps {
		if _, dup := seen[p.key()]; dup {
			continue
		}
		seen[p.key()] = struct{}{}
		out = append(out, p)
	}
	return out
}
