package programs

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/tso"
)

// The generators must emit programs that really are renamings of each
// other under the declared symmetry — tso.Symmetry.Validate is the
// soundness gate the model checker relies on, so every (protocol, n,
// variant) the catalog can reach has to pass it.
func TestNProcSymmetryValidates(t *testing.T) {
	variants := []DekkerVariant{DekkerNoFence, DekkerMfence, DekkerLmfence}
	for n := 2; n <= 5; n++ {
		for _, v := range variants {
			for _, sp := range []*SymProtocol{BakeryN(n, v), PetersonN(n, v)} {
				if err := sp.Sym.Validate(sp.Progs, sp.Cfg.MemWords); err != nil {
					t.Errorf("%s: symmetry declaration rejected: %v", sp.Name, err)
				}
				if got := sp.Sym.N(); got != n {
					t.Errorf("%s: class size %d, want %d", sp.Name, got, n)
				}
			}
		}
	}
}

// The N-indexed layout must stay inside the configured memory and keep
// the two bakery arrays disjoint.
func TestNProcLayout(t *testing.T) {
	for n := 2; n <= 8; n++ {
		words := NProcMemWords(n)
		for i := 0; i < n; i++ {
			if int(AddrFlagN(i)) >= words {
				t.Fatalf("n=%d: flag[%d]=%d outside %d words", n, i, AddrFlagN(i), words)
			}
			if int(AddrNumN(n, i)) >= words {
				t.Fatalf("n=%d: num[%d]=%d outside %d words", n, i, AddrNumN(n, i), words)
			}
			if AddrNumN(n, i) <= AddrFlagN(n-1) {
				t.Fatalf("n=%d: num[%d]=%d overlaps flag block", n, i, AddrNumN(n, i))
			}
		}
		for l := 1; l < n; l++ {
			if int(AddrTurnN(n, l)) >= words {
				t.Fatalf("n=%d: turn[%d]=%d outside %d words", n, l, AddrTurnN(n, l), words)
			}
		}
	}
}

// At n=2 the N-indexed layout must coincide with the classic constants;
// the synth corpus and the catalog's address comments depend on it.
func TestNProcMatchesClassicLayout(t *testing.T) {
	if AddrFlagN(0) != AddrFlag0 || AddrFlagN(1) != AddrFlag1 {
		t.Fatalf("flag layout mismatch: %d,%d vs %d,%d", AddrFlagN(0), AddrFlagN(1), AddrFlag0, AddrFlag1)
	}
	if AddrTurnN(2, 1) != AddrTurn {
		t.Fatalf("turn layout mismatch: %d vs %d", AddrTurnN(2, 1), AddrTurn)
	}
	if AddrNumN(2, 0) != AddrNum0 || AddrNumN(2, 1) != AddrNum1 {
		t.Fatalf("num layout mismatch: %d,%d vs %d,%d", AddrNumN(2, 0), AddrNumN(2, 1), AddrNum0, AddrNum1)
	}
}

// Declaring full symmetry over the classic hand-written Peterson pair
// must be rejected: its threads break ties asymmetrically (thread 0
// wins), so they are not renamings of each other. A generator bug that
// smuggled thread-id asymmetry into the templates would be caught the
// same way.
func TestValidateRejectsAsymmetricPrograms(t *testing.T) {
	p0, p1 := PetersonPair(DekkerNoFence)
	sym := &tso.Symmetry{
		Procs:    []arch.ProcID{0, 1},
		Blocks:   []tso.SymBlock{{Base: AddrFlag0, Stride: 1}},
		PidWords: nil,
	}
	if err := sym.Validate([]*tso.Program{p0, p1}, 16); err == nil {
		t.Fatal("classic PetersonPair accepted as symmetric; want rejection")
	}
}
