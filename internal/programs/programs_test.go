package programs

import (
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/tso"
)

func TestDekkerVariantStrings(t *testing.T) {
	for v, want := range map[DekkerVariant]string{
		DekkerNoFence: "nofence", DekkerMfence: "mfence",
		DekkerLmfence: "lmfence", DekkerLmfenceMirrored: "lmfence-mirrored",
	} {
		if v.String() != want {
			t.Errorf("%d.String() = %q, want %q", v, v.String(), want)
		}
	}
}

func opCount(p *tso.Program, op tso.Op) int {
	n := 0
	for _, in := range p.Instrs {
		if in.Op == op {
			n++
		}
	}
	return n
}

func TestDekkerPairFenceShapes(t *testing.T) {
	// nofence: no fence ops anywhere.
	p0, p1 := DekkerPair(DekkerNoFence)
	for _, p := range []*tso.Program{p0, p1} {
		if opCount(p, tso.OpMfence)+opCount(p, tso.OpLE) != 0 {
			t.Errorf("%s: unexpected fence ops", p.Name)
		}
	}
	// mfence: one mfence each, no LE.
	p0, p1 = DekkerPair(DekkerMfence)
	for _, p := range []*tso.Program{p0, p1} {
		if opCount(p, tso.OpMfence) != 1 || opCount(p, tso.OpLE) != 0 {
			t.Errorf("%s: wrong fence shape", p.Name)
		}
	}
	// lmfence: primary has the LE/ST quadruple, secondary an mfence.
	p0, p1 = DekkerPair(DekkerLmfence)
	if opCount(p0, tso.OpLE) != 1 || opCount(p0, tso.OpLinkBegin) != 1 ||
		opCount(p0, tso.OpStoreLinked) != 1 || opCount(p0, tso.OpLinkBranch) != 1 {
		t.Errorf("primary missing the Fig. 3(b) translation: %v", p0.Instrs)
	}
	if opCount(p0, tso.OpMfence) != 0 {
		t.Error("primary carries a program-based fence")
	}
	if opCount(p1, tso.OpMfence) != 1 || opCount(p1, tso.OpLE) != 0 {
		t.Error("secondary fence shape wrong")
	}
	// mirrored: both carry the LE/ST quadruple.
	p0, p1 = DekkerPair(DekkerLmfenceMirrored)
	for _, p := range []*tso.Program{p0, p1} {
		if opCount(p, tso.OpLE) != 1 {
			t.Errorf("%s: mirrored variant missing LE", p.Name)
		}
	}
}

func TestDekkerLoopRuns(t *testing.T) {
	for _, v := range []DekkerVariant{DekkerNoFence, DekkerMfence, DekkerLmfence} {
		cfg := arch.DefaultConfig()
		m := tso.NewMachine(cfg, DekkerLoop(v, 50, 2))
		if _, err := tso.NewRunner(m).RunProc(0); err != nil {
			t.Errorf("%v: %v", v, err)
		}
		// The release store must have completed 50 times; final flag 0.
		if got := m.Mem(AddrL1); got != 0 {
			t.Errorf("%v: final L1 = %d", v, got)
		}
	}
}

func TestRoundTripProgramsInterlock(t *testing.T) {
	cfg := arch.DefaultConfig()
	m := tso.NewMachine(cfg, RoundTripPrimary(20), RoundTripSecondary(20))
	if _, err := tso.NewRunner(m).Run(); err != nil {
		t.Fatal(err)
	}
	if m.Procs[0].Stats.LinkFences != 20 {
		t.Errorf("primary armed %d links, want 20", m.Procs[0].Stats.LinkFences)
	}
	if m.Procs[1].Stats.Loads != 20 {
		t.Errorf("secondary performed %d loads, want 20", m.Procs[1].Stats.Loads)
	}
	if m.Procs[0].Stats.LinkBreaks == 0 {
		t.Error("no links broken in the contended round-trip benchmark")
	}
}

func TestLmfenceTraceAnnotations(t *testing.T) {
	p := LmfenceTrace()
	found := 0
	for _, in := range p.Instrs {
		if strings.Contains(in.Note, "K1.") {
			found++
		}
	}
	if found != 4 {
		t.Errorf("Fig. 3(b) notes on %d instructions, want 4", found)
	}
}

func TestLitmusBuildersProduceHaltingPrograms(t *testing.T) {
	builders := map[string]func() (*tso.Program, *tso.Program){
		"sb":         StoreBufferPair,
		"sb-fenced":  StoreBufferFencedPair,
		"sb-lmfence": StoreBufferLmfencePair,
		"mp":         MessagePassingPair,
		"load-load":  LoadLoadPair,
	}
	for name, build := range builders {
		p0, p1 := build()
		for _, p := range []*tso.Program{p0, p1} {
			if opCount(p, tso.OpHalt) == 0 {
				t.Errorf("%s/%s: program does not halt", name, p.Name)
			}
		}
	}
}
