// Package programs assembles the canonical protocol programs from the
// paper for the simulated machine: the Dekker-duality idiom in its
// unfenced, mfence, and l-mfence forms (Figures 1 and 3(a)), classic
// store-buffering and message-passing litmus tests, and the round-trip
// microbenchmarks behind the overhead comparison in Section 5.
package programs

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/tso"
)

// Fixed memory layout shared by all protocol programs.
const (
	// AddrL1 and AddrL2 are the two Dekker flags.
	AddrL1 arch.Addr = 0
	AddrL2 arch.Addr = 1
	// AddrCS0 and AddrCS1 are touched inside the critical section ("a few
	// memory locations", per the paper's serial experiment).
	AddrCS0 arch.Addr = 2
	AddrCS1 arch.Addr = 3
	// AddrX and AddrY are generic litmus-test locations.
	AddrX arch.Addr = 4
	AddrY arch.Addr = 5
)

// Registers with fixed roles in the generated programs.
const (
	RegScratch tso.Reg = 7 // LE destination / temporaries
	RegFlag    tso.Reg = 6 // set to 1 when the thread entered its CS
	RegObs     tso.Reg = 0 // observed value of the other thread's flag
	RegCounter tso.Reg = 5 // loop counter
)

// DekkerVariant selects the fence discipline of a Dekker-protocol thread
// pair.
type DekkerVariant int

const (
	// DekkerNoFence is Figure 1 verbatim: no fences. Broken on TSO; the
	// model checker finds the mutual-exclusion violation.
	DekkerNoFence DekkerVariant = iota
	// DekkerMfence inserts a full mfence between the flag write and the
	// remote read on both threads (the traditional fix).
	DekkerMfence
	// DekkerLmfence is Figure 3(a): the primary thread uses
	// l-mfence(&L1, 1); the secondary keeps an ordinary mfence.
	DekkerLmfence
	// DekkerLmfenceMirrored has both threads use l-mfence on their own
	// flag (the paper notes the protocol still provides mutual exclusion).
	DekkerLmfenceMirrored
)

func (v DekkerVariant) String() string {
	switch v {
	case DekkerNoFence:
		return "nofence"
	case DekkerMfence:
		return "mfence"
	case DekkerLmfence:
		return "lmfence"
	case DekkerLmfenceMirrored:
		return "lmfence-mirrored"
	default:
		return fmt.Sprintf("DekkerVariant(%d)", int(v))
	}
}

// dekkerThread builds one single-shot Dekker attempt. own/other are the
// thread's flag and the peer's flag; fence selects what sits between the
// flag write and the remote read.
func dekkerThread(name string, own, other arch.Addr, fence DekkerVariant, primary bool) *tso.Program {
	b := tso.NewBuilder(name)
	switch {
	case fence == DekkerLmfence && primary,
		fence == DekkerLmfenceMirrored:
		b.Lmfence(own, 1, RegScratch) // write own flag under the link
	case fence == DekkerMfence || fence == DekkerLmfence:
		b.StoreI(own, 1).Mfence()
	default: // DekkerNoFence
		b.StoreI(own, 1)
	}
	b.Load(RegObs, other).
		Bne(RegObs, 0, "skip").
		CSEnter().
		LoadI(RegFlag, 1).
		StoreI(AddrCS0, 1).
		Load(RegScratch, AddrCS1).
		CSExit().
		Label("skip").
		StoreI(own, 0).
		Halt()
	return b.Build()
}

// DekkerPair returns the two single-shot Dekker threads for a variant.
// Thread 0 is the primary. Intended for the model checker: mutual
// exclusion holds iff no interleaving sets CSViolation.
func DekkerPair(v DekkerVariant) (*tso.Program, *tso.Program) {
	t0 := dekkerThread("dekker-primary-"+v.String(), AddrL1, AddrL2, v, true)
	t1 := dekkerThread("dekker-secondary-"+v.String(), AddrL2, AddrL1, v, false)
	return t0, t1
}

// DekkerLoop builds the primary thread's Dekker acquire/release loop for
// the serial-overhead experiment (§1: "a thread running alone and
// executing the Dekker protocol ... runs 4-7 times slower" with mfence).
// The loop runs iters times; each iteration writes the flag under the
// selected fence discipline, reads the peer flag, touches csWork memory
// locations in the critical section, and releases.
func DekkerLoop(v DekkerVariant, iters int, csWork int) *tso.Program {
	b := tso.NewBuilder("dekker-loop-" + v.String())
	b.LoadI(RegCounter, arch.Word(iters))
	b.Label("top")
	switch v {
	case DekkerNoFence:
		b.StoreI(AddrL1, 1)
	case DekkerMfence:
		b.StoreI(AddrL1, 1).Mfence()
	case DekkerLmfence, DekkerLmfenceMirrored:
		b.Lmfence(AddrL1, 1, RegScratch)
	}
	b.Load(RegObs, AddrL2)
	// The loop assumes no contention (running alone); proceed into the CS
	// regardless, as the measured fast path does.
	for i := 0; i < csWork; i++ {
		b.StoreI(AddrCS0+arch.Addr(i%2), arch.Word(i))
	}
	b.StoreI(AddrL1, 0)
	b.AddI(RegCounter, RegCounter, -1)
	b.Bne(RegCounter, 0, "top")
	b.Halt()
	return b.Build()
}

// StoreBufferPair is the classic SB litmus test:
//
//	P0: x=1; r=y    P1: y=1; r=x
//
// TSO permits the outcome r==0 on both threads; sequential consistency
// forbids it. The model checker must find it reachable (it is exactly the
// reordering that breaks the unfenced Dekker protocol).
func StoreBufferPair() (*tso.Program, *tso.Program) {
	p0 := tso.NewBuilder("sb-p0").StoreI(AddrX, 1).Load(RegObs, AddrY).Halt().Build()
	p1 := tso.NewBuilder("sb-p1").StoreI(AddrY, 1).Load(RegObs, AddrX).Halt().Build()
	return p0, p1
}

// StoreBufferFencedPair is SB with mfence between the store and load;
// r0==0 && r1==0 must become unreachable.
func StoreBufferFencedPair() (*tso.Program, *tso.Program) {
	p0 := tso.NewBuilder("sb-f-p0").StoreI(AddrX, 1).Mfence().Load(RegObs, AddrY).Halt().Build()
	p1 := tso.NewBuilder("sb-f-p1").StoreI(AddrY, 1).Mfence().Load(RegObs, AddrX).Halt().Build()
	return p0, p1
}

// StoreBufferLmfencePair is SB with the primary (P0) using l-mfence and
// the secondary using mfence, matching the paper's pairing rule. The
// forbidden outcome must remain unreachable.
func StoreBufferLmfencePair() (*tso.Program, *tso.Program) {
	p0 := tso.NewBuilder("sb-lm-p0").Lmfence(AddrX, 1, RegScratch).Load(RegObs, AddrY).Halt().Build()
	p1 := tso.NewBuilder("sb-lm-p1").StoreI(AddrY, 1).Mfence().Load(RegObs, AddrX).Halt().Build()
	return p0, p1
}

// MessagePassingPair is the MP litmus test:
//
//	P0: data=1; flag=1    P1: r0=flag; r1=data
//
// TSO forbids r0==1 && r1==0 (stores complete in FIFO order, loads are
// not reordered with loads). The checker must never reach it.
func MessagePassingPair() (*tso.Program, *tso.Program) {
	p0 := tso.NewBuilder("mp-p0").StoreI(AddrX, 1).StoreI(AddrY, 1).Halt().Build()
	p1 := tso.NewBuilder("mp-p1").Load(1, AddrY).Load(2, AddrX).Halt().Build()
	return p0, p1
}

// LoadLoadPair exercises ordering principle 1 (reads not reordered with
// reads) together with principle 3 via a writer that publishes two values
// in order; the reader must never see the second value without the first.
func LoadLoadPair() (*tso.Program, *tso.Program) {
	p0 := tso.NewBuilder("ll-writer").StoreI(AddrX, 1).StoreI(AddrX, 2).StoreI(AddrY, 1).Halt().Build()
	p1 := tso.NewBuilder("ll-reader").Load(1, AddrY).Load(2, AddrX).Halt().Build()
	return p0, p1
}

// LmfenceTrace is the standalone Fig. 3(b) sequence, for trace printing.
func LmfenceTrace() *tso.Program {
	return tso.NewBuilder("lmfence-trace").
		Lmfence(AddrL1, 1, RegScratch).
		Load(RegObs, AddrL2).
		StoreI(AddrL1, 0).
		Halt().
		Build()
}

// RoundTripPrimary builds the primary side of the overhead experiment: it
// repeatedly publishes to the guarded location with l-mfence and spins on
// its own work, while a secondary (see RoundTripSecondary) reads the
// location, each read breaking the link.
func RoundTripPrimary(iters int) *tso.Program {
	b := tso.NewBuilder("rt-primary")
	b.LoadI(RegCounter, arch.Word(iters))
	b.Label("top")
	b.Lmfence(AddrL1, 1, RegScratch)
	b.StoreI(AddrL1, 0)
	b.AddI(RegCounter, RegCounter, -1)
	b.Bne(RegCounter, 0, "top")
	b.Halt()
	return b.Build()
}

// RoundTripSecondary reads the guarded location iters times.
func RoundTripSecondary(iters int) *tso.Program {
	b := tso.NewBuilder("rt-secondary")
	b.LoadI(RegCounter, arch.Word(iters))
	b.Label("top")
	b.Load(RegObs, AddrL1)
	b.AddI(RegCounter, RegCounter, -1)
	b.Bne(RegCounter, 0, "top")
	b.Halt()
	return b.Build()
}
