package programs

import (
	"repro/internal/arch"
	"repro/internal/tso"
)

// This file encodes the other classic mutual-exclusion algorithms the
// paper's introduction cites — Peterson [22] and Lamport's bakery [18] —
// as single-shot protocol attempts for the model checker. Like the
// Dekker protocol of Fig. 1, all of them rely on the Dekker duality
// (write own flag, read the other's) and are therefore broken by TSO's
// store buffering unless a fence separates the write from the read.
//
// Fence placement for the l-mfence variants follows from Definition 2
// plus one rule the model checker enforced on us: EVERY location of
// mine that the peer's protocol reads must be covered by its own
// l-mfence, because serialization is triggered by the peer touching the
// *guarded* location — a store to an unguarded location can linger in
// the buffer invisibly even though a later guarded store was "fenced".
// For Peterson the peer reads flag[i] and turn; guarding turn (the last
// store) suffices since flag[i] precedes it in the FIFO buffer and the
// peer reads turn before acting. Turn is multi-writer — the paper's
// single-writer usage guidance concerns atomicity, which the protocol
// does not need; both threads guarding turn also means each thread's LE
// breaks the other's link, serializing them against each other. For the
// bakery the peer reads num[i] in its doorway and choosing[i]/num[i] in
// its wait section, so choosing[i] and num[i] are each guarded.
//
// Two naive placements are MODEL-CHECKED BROKEN and preserved in the
// git history of this file: guarding only Peterson's flag lets the turn
// store escape, and re-arming choosing[i] instead of guarding the
// bakery ticket lets a peer compute a ticket from a stale num[i] — both
// are instances of the hazard the paper flags with "threads ... need to
// ... be careful as to where to place the l-mfence and which memory
// location to guard".

// Memory layout for the classic 2-process protocols, expressed through
// the N-indexed layout of nproc.go at n=2 so the hand-written pairs and
// the generators agree on addresses. AddrTurn and AddrNum0 share word
// 10 — harmless, the protocols are disjoint (Peterson never touches
// num[], the bakery never touches turn).
const (
	AddrFlag0 = nprocBase + 0 // Peterson flag[0] / bakery choosing[0]
	AddrFlag1 = nprocBase + 1 // Peterson flag[1] / bakery choosing[1]
	AddrTurn  = nprocBase + 2 // Peterson turn (= AddrTurnN(2, 1))
	AddrNum0  = nprocBase + 2 // bakery num[0] (= AddrNumN(2, 0))
	AddrNum1  = nprocBase + 3 // bakery num[1] (= AddrNumN(2, 1))
)

// petersonThread encodes one single-shot Peterson attempt for thread i.
// RegFlag (r6) is set to 1 if the thread entered its critical section.
func petersonThread(i int, v DekkerVariant) *tso.Program {
	self, other := AddrFlag0, AddrFlag1
	if i == 1 {
		self, other = AddrFlag1, AddrFlag0
	}
	j := arch.Word(1 - i)

	b := tso.NewBuilder("peterson-" + v.String())
	switch v {
	case DekkerLmfence, DekkerLmfenceMirrored:
		// Guard the LAST store before the reads — the turn hand-over.
		// The flag write ahead of it in the FIFO buffer is published by
		// the same link break or fallback fence.
		b.StoreI(self, 1)
		b.Lmfence(AddrTurn, j, RegScratch)
	case DekkerMfence:
		b.StoreI(self, 1)
		b.StoreI(AddrTurn, j)
		b.Mfence()
	default: // DekkerNoFence
		b.StoreI(self, 1)
		b.StoreI(AddrTurn, j)
	}
	b.Load(RegObs, other).
		Beq(RegObs, 0, "enter"). // peer not interested
		Load(1, AddrTurn).
		Bne(1, j, "enter"). // turn handed back to us
		Jmp("skip").
		Label("enter").
		CSEnter().
		LoadI(RegFlag, 1).
		CSExit().
		Label("skip").
		StoreI(self, 0).
		Halt()
	return b.Build()
}

// PetersonPair returns both single-shot Peterson threads under the given
// fence discipline (the Lmfence variants are mirrored: Peterson is
// symmetric, so both threads guard their own flag).
func PetersonPair(v DekkerVariant) (*tso.Program, *tso.Program) {
	return petersonThread(0, v), petersonThread(1, v)
}

// bakeryThread encodes one single-shot bakery attempt for thread i.
// Registers: r2 = own ticket, r3/r4 = peer observations.
func bakeryThread(i int, v DekkerVariant) *tso.Program {
	selfChoosing, otherChoosing := AddrFlag0, AddrFlag1
	selfNum, otherNum := AddrNum0, AddrNum1
	if i == 1 {
		selfChoosing, otherChoosing = AddrFlag1, AddrFlag0
		selfNum, otherNum = AddrNum1, AddrNum0
	}

	b := tso.NewBuilder("bakery-" + v.String())
	// Doorway: choosing[i]=1; num[i]=num[j]+1; choosing[i]=0. TSO needs
	// two serialization points: choosing[i]=1 must be visible before the
	// ticket read, and num[i] before the wait-section reads.
	switch v {
	case DekkerLmfence, DekkerLmfenceMirrored:
		// The peer reads BOTH of this thread's locations: num[i] in its
		// doorway (to compute the ticket) and choosing[i]/num[i] in its
		// wait section. Each read must trigger serialization, so each
		// write is its own l-mfence: first choosing[i], then the ticket.
		// On single-link hardware the second (different-location)
		// l-mfence forces the flush that completes choosing[i]=1; with
		// two links both guards stay armed and no flush is needed — the
		// model checker verifies both configurations.
		b.Lmfence(selfChoosing, 1, RegScratch)
		b.Load(2, otherNum)
		b.AddI(2, 2, 1)
		b.LmfenceReg(selfNum, 2, RegScratch)
		b.StoreI(selfChoosing, 0)
	case DekkerMfence:
		b.StoreI(selfChoosing, 1)
		b.Mfence()
		b.Load(2, otherNum)
		b.AddI(2, 2, 1)
		b.Store(selfNum, 2)
		b.StoreI(selfChoosing, 0)
		b.Mfence()
	default: // DekkerNoFence
		b.StoreI(selfChoosing, 1)
		b.Load(2, otherNum)
		b.AddI(2, 2, 1)
		b.Store(selfNum, 2)
		b.StoreI(selfChoosing, 0)
	}
	// Wait section, single-shot: bail out (skip) instead of spinning.
	b.Load(3, otherChoosing).
		Bne(3, 0, "skip"). // peer mid-doorway: conservative skip
		Load(4, otherNum).
		Beq(4, 0, "enter"). // peer not competing
		// Enter iff (num[i], i) < (num[j], j): numbers first, id breaks ties.
		Blt(2, 4, "enter")
	if i == 0 {
		// Equal tickets favour thread 0: enter on a tie, skip otherwise.
		b.Sub(5, 2, 4).
			Bne(5, 0, "skip"). // num[i] > num[j]
			Jmp("enter")       // tie: thread 0 wins
	} else {
		b.Jmp("skip") // thread 1 loses ties and greater tickets
	}
	b.Label("enter").
		CSEnter().
		LoadI(RegFlag, 1).
		CSExit().
		Label("skip").
		StoreI(selfNum, 0).
		Halt()
	return b.Build()
}

// BakeryPair returns both single-shot bakery threads under the given
// fence discipline.
func BakeryPair(v DekkerVariant) (*tso.Program, *tso.Program) {
	return bakeryThread(0, v), bakeryThread(1, v)
}
