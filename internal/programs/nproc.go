package programs

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/tso"
)

// This file generalizes the classic protocols to N interchangeable
// processors: Lamport's bakery and the Peterson filter lock, emitted
// from one shared template per thread so the programs are cyclic
// renamings of each other — the property tso.Symmetry.Validate checks
// and the symmetry-reduced model checker exploits. The templates scan
// peers in RING order (i+1, i+2, ... mod n), never ascending thread-id
// order: a deterministic scan order is part of the state, and only ring
// order survives renaming (rotating the ring maps each template
// position-for-position onto the next thread's; see the discussion in
// tso/symmetry.go for why the full symmetric group is unattainable).
// Every address is an immediate (no register-indexed addressing), which
// keeps the partial-order reduction's static address analysis precise;
// thread identity enters only through which block word each thread owns
// and, for the filter lock, the pid-encoded values written to the
// shared turn[] words.
//
// Single-shot discipline as in classic.go: threads bail out ("skip")
// instead of spinning, so the state space is finite and the checker's
// outcome register r6 records who entered. The bakery template breaks
// no ties — equal tickets make both threads skip — because a tie-break
// needs the thread id in a comparison, which would break the renaming
// property; mutual exclusion (what the checker verifies) is unaffected.

// nprocBase is the first memory word of the N-indexed protocol arrays;
// the shared Dekker/litmus words of programs.go live below it.
const nprocBase arch.Addr = 8

// AddrFlagN is thread i's own protocol word: Peterson's level[i],
// the bakery's choosing[i] (and, at N=2, the classic flag words).
func AddrFlagN(i int) arch.Addr { return nprocBase + arch.Addr(i) }

// AddrTurnN is the Peterson filter lock's turn[l] word for level
// l = 1..n-1 in an n-thread instance.
func AddrTurnN(n, l int) arch.Addr { return nprocBase + arch.Addr(n) + arch.Addr(l-1) }

// AddrNumN is the bakery's num[i] ticket word in an n-thread instance.
func AddrNumN(n, i int) arch.Addr { return nprocBase + arch.Addr(n) + arch.Addr(i) }

// NProcMemWords is the smallest memory size covering the N-indexed
// layout (never below the catalog's 16-word machines).
func NProcMemWords(n int) int {
	if w := int(nprocBase) + 2*n; w > 16 {
		return w
	}
	return 16
}

// SymProtocol is an N-process protocol instance ready for the model
// checker: the per-thread programs, the symmetry declaration the
// generator guarantees (and litmus re-validates), and a machine
// configuration sized for the layout.
type SymProtocol struct {
	Name  string
	Progs []*tso.Program
	Sym   *tso.Symmetry
	Cfg   arch.Config
}

// Build constructs the root machine of the instance.
func (sp *SymProtocol) Build() *tso.Machine {
	return tso.NewMachine(sp.Cfg, sp.Progs...)
}

func nprocConfig(n int) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Procs = n
	cfg.MemWords = NProcMemWords(n)
	cfg.StoreBufferDepth = 4
	return cfg
}

func nprocProcs(n int) []arch.ProcID {
	ps := make([]arch.ProcID, n)
	for i := range ps {
		ps[i] = arch.ProcID(i)
	}
	return ps
}

// BakeryN returns the n-thread single-shot bakery under the given fence
// discipline. Thread i's registers: r2 own ticket, r3/r4 peer
// observations, r6 entered-CS flag, r7 l-mfence scratch. The protocol
// is fully symmetric — no pid-encoded data — so the symmetry
// declaration is just the two address blocks (choosing[] and num[]).
func BakeryN(n int, v DekkerVariant) *SymProtocol {
	if n < 2 {
		panic(fmt.Sprintf("programs: BakeryN needs n >= 2, got %d", n))
	}
	progs := make([]*tso.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = bakeryNThread(n, i, v)
	}
	return &SymProtocol{
		Name:  fmt.Sprintf("bakery%d-%v", n, v),
		Progs: progs,
		Sym: &tso.Symmetry{
			Procs: nprocProcs(n),
			Blocks: []tso.SymBlock{
				{Base: AddrFlagN(0), Stride: 1},   // choosing[]
				{Base: AddrNumN(n, 0), Stride: 1}, // num[]
			},
		},
		Cfg: nprocConfig(n),
	}
}

func bakeryNThread(n, i int, v DekkerVariant) *tso.Program {
	choosing := AddrFlagN(i)
	num := AddrNumN(n, i)
	b := tso.NewBuilder(fmt.Sprintf("bakery%d-%v-t%d", n, v, i))

	// Doorway entry: announce choosing[i]=1 before reading tickets. The
	// l-mfence variant guards choosing[i] because every peer reads it in
	// its wait section (the coverage rule of classic.go).
	switch v {
	case DekkerLmfence, DekkerLmfenceMirrored:
		b.Lmfence(choosing, 1, RegScratch)
	case DekkerMfence:
		b.StoreI(choosing, 1).Mfence()
	default:
		b.StoreI(choosing, 1)
	}

	// Ticket: r2 = 1 + max over peers' num[j], scanning peers in RING
	// order (i+1, i+2, ... mod n). Ring order is what makes the program
	// vector rotation-symmetric: position d of every thread's scan
	// refers to its distance-d neighbor, so rotating the ring maps each
	// template position-for-position onto the next thread's.
	b.LoadI(2, 0)
	for d := 1; d < n; d++ {
		j := (i + d) % n
		upd, next := fmt.Sprintf("dmax%d", d), fmt.Sprintf("dnext%d", d)
		b.Load(3, AddrNumN(n, j)).
			Blt(2, 3, upd).
			Jmp(next).
			Label(upd).
			AddI(2, 3, 0).
			Label(next)
	}
	b.AddI(2, 2, 1)

	// Publish the ticket, then leave the doorway. Peers read num[i] both
	// in their doorway and their wait section, so the l-mfence variant
	// guards it as its own link.
	switch v {
	case DekkerLmfence, DekkerLmfenceMirrored:
		b.LmfenceReg(num, 2, RegScratch)
		b.StoreI(choosing, 0)
	case DekkerMfence:
		b.Store(num, 2).
			StoreI(choosing, 0).
			Mfence()
	default:
		b.Store(num, 2).
			StoreI(choosing, 0)
	}

	// Wait section, single shot, again in ring order: bail out unless
	// this thread's ticket strictly beats every competing peer's. Ties
	// make both sides skip — safe, and it keeps the program free of
	// thread-id comparisons.
	for d := 1; d < n; d++ {
		j := (i + d) % n
		next := fmt.Sprintf("wnext%d", d)
		b.Load(3, AddrFlagN(j)).
			Bne(3, 0, "skip"). // peer mid-doorway: conservative skip
			Load(4, AddrNumN(n, j)).
			Beq(4, 0, next). // peer not competing
			Blt(2, 4, next). // strictly smaller ticket beats j
			Jmp("skip")      // tie or larger: bail
		b.Label(next)
	}
	b.CSEnter().
		LoadI(RegFlag, 1).
		CSExit().
		Label("skip").
		StoreI(num, 0).
		Halt()
	return b.Build()
}

// PetersonN returns the n-thread Peterson filter lock under the given
// fence discipline. Thread i climbs levels 1..n-1; at each level it
// writes level[i]=l, then turn[l]=i+1 (pid-encoded: 0 unset, k+1 for
// thread k), and may pass the level once it is not the most recent
// turn[l] writer or no peer is at its level or above. The turn[] words
// and the registers observing them (r4, and the l-mfence scratch r7)
// are declared pid-encoded so renamings relabel them.
//
// At n=2 this is classic Peterson with the last-writer-waits
// convention. The l-mfence variant guards turn[l] — the last store of
// each level's doorway — publishing the preceding level[i] write via
// the same FIFO flush, exactly like the 2-process placement that
// classic.go's model checking validated.
func PetersonN(n int, v DekkerVariant) *SymProtocol {
	if n < 2 {
		panic(fmt.Sprintf("programs: PetersonN needs n >= 2, got %d", n))
	}
	progs := make([]*tso.Program, n)
	for i := 0; i < n; i++ {
		progs[i] = petersonNThread(n, i, v)
	}
	pidWords := make([]arch.Addr, 0, n-1)
	for l := 1; l < n; l++ {
		pidWords = append(pidWords, AddrTurnN(n, l))
	}
	return &SymProtocol{
		Name:  fmt.Sprintf("peterson%d-%v", n, v),
		Progs: progs,
		Sym: &tso.Symmetry{
			Procs:    nprocProcs(n),
			Blocks:   []tso.SymBlock{{Base: AddrFlagN(0), Stride: 1}}, // level[]
			PidWords: pidWords,
			PidRegs:  []tso.Reg{4, RegScratch},
		},
		Cfg: nprocConfig(n),
	}
}

func petersonNThread(n, i int, v DekkerVariant) *tso.Program {
	level := AddrFlagN(i)
	self := arch.Word(i) + 1 // pid encoding of thread i
	b := tso.NewBuilder(fmt.Sprintf("peterson%d-%v-t%d", n, v, i))

	for l := 1; l < n; l++ {
		turn := AddrTurnN(n, l)
		switch v {
		case DekkerLmfence, DekkerLmfenceMirrored:
			b.StoreI(level, arch.Word(l))
			b.Lmfence(turn, self, RegScratch)
		case DekkerMfence:
			b.StoreI(level, arch.Word(l)).
				StoreI(turn, self).
				Mfence()
		default:
			b.StoreI(level, arch.Word(l)).
				StoreI(turn, self)
		}
		// Pass the level unless some peer is at this level or higher
		// while this thread is still the most recent turn[l] writer.
		// Peers are scanned in ring order for rotation symmetry (see
		// bakeryNThread).
		b.LoadI(5, arch.Word(l))
		for d := 1; d < n; d++ {
			j := (i + d) % n
			next := fmt.Sprintf("l%dnext%d", l, d)
			b.Load(3, AddrFlagN(j)).
				Blt(3, 5, next). // level[j] < l: j not in the way
				Load(4, turn).
				Beq(4, arch.Word(self), "skip") // still our turn: bail
			b.Label(next)
		}
	}
	b.CSEnter().
		LoadI(RegFlag, 1).
		CSExit().
		Label("skip").
		StoreI(level, 0).
		Halt()
	return b.Build()
}
