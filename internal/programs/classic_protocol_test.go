// These coherence-matrix tests live in an external test package because
// they drive internal/litmus, which itself imports internal/programs.
//
// The matrix pins the paper's Section 2 claim that the LE/ST mechanism
// "can be adapted to other variants such as MSI and MOESI": every classic
// mutual-exclusion protocol is model-checked under both MESI and MOESI —
// the unfenced variants must yield a concrete, replayable violation
// witness, and every fenced variant must be exhaustively safe.
package programs_test

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/programs"
	"repro/internal/tso"
)

// matrixConfig mirrors synth.ProblemConfig: two processors and a memory
// just big enough for the protocol locations keep the exhaustive
// explorations fast.
func matrixConfig(proto arch.Protocol) arch.Config {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4
	cfg.Protocol = proto
	return cfg
}

func TestClassicsAcrossProtocols(t *testing.T) {
	families := []struct {
		name string
		pair func(programs.DekkerVariant) (*tso.Program, *tso.Program)
	}{
		{"dekker", programs.DekkerPair},
		{"peterson", programs.PetersonPair},
		{"bakery", programs.BakeryPair},
	}
	variants := []struct {
		v               programs.DekkerVariant
		expectViolation bool
	}{
		{programs.DekkerNoFence, true},
		{programs.DekkerMfence, false},
		{programs.DekkerLmfence, false},
		{programs.DekkerLmfenceMirrored, false},
	}
	protocols := []arch.Protocol{arch.MESI, arch.MOESI}

	for _, fam := range families {
		for _, vc := range variants {
			for _, proto := range protocols {
				t.Run(fam.name+"/"+vc.v.String()+"/"+proto.String(), func(t *testing.T) {
					t.Parallel()
					p0, p1 := fam.pair(vc.v)
					cfg := matrixConfig(proto)
					build := func() *tso.Machine { return tso.NewMachine(cfg, p0, p1) }
					opts := litmus.Options{
						Properties: []litmus.Property{litmus.MutualExclusion},
					}

					if vc.expectViolation {
						opts.StopOnViolation = true
						r := litmus.Explore(build, opts)
						if r.Violations == 0 {
							t.Fatalf("unfenced %s admits no mutual-exclusion violation under %v",
								fam.name, proto)
						}
						if len(r.ViolationTrace) == 0 {
							t.Fatal("violation recorded without a witness trace")
						}
						// The witness must replay: the recorded actions, applied
						// from the initial state, reproduce the CS overlap.
						m := litmus.Replay(build, r.ViolationTrace)
						if err := litmus.MutualExclusion(m); err == nil {
							t.Errorf("witness trace does not replay to a violating state:\n%s",
								litmus.FormatTrace(build, r.ViolationTrace))
						}
						return
					}

					r := litmus.Explore(build, opts)
					if r.Truncated {
						t.Fatalf("exploration truncated at %d states", r.States)
					}
					if r.Violations != 0 || r.Deadlocks != 0 {
						t.Errorf("fenced %s under %v: %d violations, %d deadlocks (first: %v)",
							fam.name, proto, r.Violations, r.Deadlocks, r.FirstViolation)
					}
				})
			}
		}
	}
}
