package rwlock_test

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/rwlock"
)

// Example_arwPlus runs the reader-biased ARW+ lock: readers pay no
// fence on their fast path; a writer publishes its intent and readers
// acknowledge at their natural poll points, avoiding signals entirely.
func Example_arwPlus() {
	l := rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts(),
		rwlock.WithWaitingHeuristic(0))

	var data [4]int64
	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		r := l.NewReader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			var sink int64
			for n := 0; n < 5000; n++ {
				r.Lock()
				for _, v := range data {
					sink += v
				}
				r.Unlock()
			}
			_ = sink
		}()
	}
	w := l.NewReader() // a reader that occasionally turns writer
	for n := 0; n < 20; n++ {
		w.LockWrite()
		for i := range data {
			data[i]++
		}
		w.UnlockWrite()
	}
	wg.Wait()
	fmt.Println(data[0] == 20 && l.Stats.Writes.Load() == 20)
	// Output: true
}
