// Package rwlock implements the reader-biased multiple-readers single-
// writer locks of the paper's second evaluation application:
//
//   - SRW — the symmetric baseline: every read acquire executes a
//     program-based full fence between raising the reader's flag and
//     checking for a writer (the classic Dekker discipline).
//   - ARW — the asymmetric lock: readers are primaries with per-reader
//     Dekker slots and pay no fence; a writer (secondary) engages each
//     registered reader in the augmented Dekker protocol, paying one
//     signal round trip per reader, one by one — the serializing
//     bottleneck the paper observes in Fig. 6(a).
//   - ARW+ — ARW with the waiting heuristic: the writer first publishes
//     its intent and spin-waits for readers to acknowledge at their
//     natural poll points (lock acquire/release); it signals only the
//     readers that stay silent — Fig. 6(b).
//
// All three are one type configured by fence mode and heuristic flag, so
// the protocol code paths shared between them really are shared.
package rwlock

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/fault"
	"repro/internal/obs"
	"repro/internal/signals"
)

// DefaultSpinBudget is the ARW+ waiting-heuristic window, in spin
// iterations, before unacknowledged readers are signaled.
const DefaultSpinBudget = 4096

// Stats counts lock events. Fields are obs instruments (zero value
// ready); every update already sits on a conflict or write slow path, so
// the migration from raw atomics costs the read fast path nothing.
type Stats struct {
	Reads       obs.Counter // read acquisitions
	Writes      obs.Counter // write acquisitions
	SignalsSent obs.Counter // signal round trips paid by writers
	AcksInTime  obs.Counter // readers satisfied within the heuristic window
	Retreats    obs.Counter // reader conflict retreats

	// BackoffParks counts parked sleeps taken by waiting parties
	// (writers waiting out readers, readers retreating before writer
	// intent) after their spin and yield phases ran dry.
	BackoffParks obs.Counter
	// WatchdogTrips counts writer-side no-progress deadlines expiring
	// while waiting on a single reader; StallNs records the stall
	// lengths. The writer keeps waiting — abandoning a reader that
	// still holds its read section would break mutual exclusion — but
	// the trip makes the stall observable.
	WatchdogTrips obs.Counter
	StallNs       obs.Histogram

	// WriteWait is the writer-side wait latency: intent published to all
	// readers quiesced (heuristic spin and signal round trips included).
	WriteWait obs.Histogram
}

// Snapshot captures the lock statistics for the benchmark pipeline.
func (s *Stats) Snapshot() obs.Snapshot {
	var out obs.Snapshot
	out.Counter("reads", &s.Reads)
	out.Counter("writes", &s.Writes)
	out.Counter("signals_sent", &s.SignalsSent)
	out.Counter("acks_in_time", &s.AcksInTime)
	out.Counter("retreats", &s.Retreats)
	out.Counter("backoff_parks", &s.BackoffParks)
	out.Counter("watchdog_trips", &s.WatchdogTrips)
	out.Histogram("stall_ns", &s.StallNs)
	out.Histogram("write_wait_ns", &s.WriteWait)
	return out
}

// slot is one registered reader's Dekker flag, padded to avoid false
// sharing between readers.
type slot struct {
	_         [8]uint64
	state     atomic.Int32 // 1 while its reader is inside a read section
	ackEpoch  atomic.Uint64
	_         [6]uint64
	fenceWord atomic.Uint64
	_         [7]uint64
}

// Lock is a multiple-readers single-writer lock biased toward readers.
// Construct with New; register each reader goroutine with NewReader.
type Lock struct {
	mode      core.Mode
	cost      core.CostProfile
	heuristic bool
	budget    int
	wait      signals.WaitPolicy
	faults    *fault.Injector

	intent atomic.Int32  // a writer wants (or holds) the lock
	epoch  atomic.Uint64 // write-lock generation, for acknowledgements

	writeMu sync.Mutex // writers compete here

	// writerFence is the private target of the symmetric writer's
	// program-based fence.
	_           [8]uint64
	writerFence atomic.Uint64
	_           [7]uint64

	regMu sync.Mutex
	slots []*slot

	Stats Stats
}

// Option configures a Lock.
type Option func(*Lock)

// WithWaitingHeuristic enables the ARW+ behaviour with the given spin
// budget (<= 0 selects DefaultSpinBudget).
func WithWaitingHeuristic(budget int) Option {
	return func(l *Lock) {
		l.heuristic = true
		if budget <= 0 {
			budget = DefaultSpinBudget
		}
		l.budget = budget
	}
}

// WithWaitPolicy shapes the lock's wait loops (spin → yield → capped
// parks) and, via a non-zero Deadline, arms the writer-side watchdog.
func WithWaitPolicy(p signals.WaitPolicy) Option {
	return func(l *Lock) { l.wait = p }
}

// WithFaults arms a fault-injection schedule on the lock's hook points
// (reader poll drops, writer wait stalls). nil disarms.
func WithFaults(in *fault.Injector) Option {
	return func(l *Lock) { l.faults = in }
}

// New builds a lock. ModeSymmetric yields the SRW baseline;
// ModeAsymmetricSW/HW yield the ARW lock with the corresponding
// round-trip cost, and WithWaitingHeuristic upgrades it to ARW+.
func New(mode core.Mode, cost core.CostProfile, opts ...Option) *Lock {
	l := &Lock{mode: mode, cost: cost}
	for _, o := range opts {
		o(l)
	}
	return l
}

// Variant names the configured design, for reports.
func (l *Lock) Variant() string {
	switch {
	case !l.mode.Asymmetric():
		return "SRW"
	case l.heuristic:
		return "ARW+"
	default:
		return "ARW"
	}
}

// Reader is one registered reader's handle. A Reader is owned by a
// single goroutine.
type Reader struct {
	l *Lock
	s *slot
}

// NewReader registers a reader with the lock.
func (l *Lock) NewReader() *Reader {
	s := &slot{}
	l.regMu.Lock()
	l.slots = append(l.slots, s)
	l.regMu.Unlock()
	return &Reader{l: l, s: s}
}

// fence is the program-based full fence the SRW reader pays on every
// acquire.
func (l *Lock) fence(w *atomic.Uint64) {
	for i := 0; i < l.cost.FencePenaltyOps; i++ {
		w.Add(1)
	}
	if l.cost.FencePenaltySpins > 0 {
		signals.Spin(l.cost.FencePenaltySpins)
	}
}

// ackIntent acknowledges the pending writer intent, if any — the
// reader's poll point.
func (r *Reader) ackIntent() {
	l := r.l
	if !l.mode.Asymmetric() {
		return
	}
	if l.intent.Load() == 0 {
		return
	}
	// Injected drop: the reader "misses" this poll point and stays
	// silent, forcing the ARW+ writer to exhaust its heuristic budget
	// and signal. Below the intent check, so the hook never taxes the
	// no-writer fast path.
	if l.faults.At(fault.LockAck) {
		return
	}
	e := l.epoch.Load()
	if r.s.ackEpoch.Load() != e {
		r.s.ackEpoch.Store(e)
	}
}

// Lock acquires the read lock. The fast path — no writer around — is:
// raise the slot flag, (SRW only) fence, check the writer flag.
func (r *Reader) Lock() {
	l := r.l
	for {
		r.s.state.Store(1) // the guarded location (L1 of Fig. 3(a))
		if !l.mode.Asymmetric() {
			l.fence(&r.s.fenceWord) // program-based mfence
		}
		if l.intent.Load() == 0 {
			l.Stats.Reads.Add(1)
			return
		}
		// Conflict: the reader (primary) retreats in favour of the
		// writer, acknowledging its intent.
		r.s.state.Store(0)
		r.ackIntent()
		l.Stats.Retreats.Add(1)
		b := signals.NewBackoff(l.wait)
		for l.intent.Load() != 0 {
			if b.Pause() {
				l.Stats.BackoffParks.Add(1)
			}
		}
	}
}

// Unlock releases the read lock. Releasing is also a natural poll point:
// a reader leaving its read section acknowledges a waiting writer.
func (r *Reader) Unlock() {
	r.s.state.Store(0)
	r.ackIntent()
}

// Lock acquires the write lock, engaging every registered reader.
func (l *Lock) Lock() { l.lockWrite(nil) }

// LockAsReader acquires the write lock on behalf of a goroutine that is
// itself a registered reader (the paper's "from time to time, a reader
// turns into a writer"); its own slot is skipped.
func (r *Reader) LockWrite() { r.l.lockWrite(r.s) }

// UnlockWrite releases a write lock taken with LockWrite.
func (r *Reader) UnlockWrite() { r.l.Unlock() }

func (l *Lock) lockWrite(self *slot) {
	l.writeMu.Lock()
	l.epoch.Add(1)
	l.intent.Store(1)
	if !l.mode.Asymmetric() {
		l.fence(&l.writerFence)
	}

	l.regMu.Lock()
	slots := make([]*slot, len(l.slots))
	copy(slots, l.slots)
	l.regMu.Unlock()

	start := time.Now()
	if l.mode.Asymmetric() && l.heuristic {
		l.waitHeuristic(slots, self)
	} else {
		l.waitEach(slots, self)
	}
	l.Stats.WriteWait.ObserveSince(start)
	l.Stats.Writes.Add(1)
}

// waitEach is the ARW (and SRW) writer wait: visit readers one by one;
// in asymmetric mode each visit costs a full signal round trip, which is
// exactly the serializing bottleneck of Fig. 6(a). (The SRW writer pays
// no signals: its readers fenced already.)
func (l *Lock) waitEach(slots []*slot, self *slot) {
	delay := l.roundTripCost()
	for _, s := range slots {
		if s == self {
			continue
		}
		if delay > 0 {
			signals.Spin(delay) // deliver the "signal"
			l.Stats.SignalsSent.Add(1)
		}
		l.waitReader(s)
	}
}

// waitReader waits out one reader's read section with backoff and the
// writer-side watchdog: past the deadline with no state change the trip
// is counted and the stall recorded, but the wait continues —
// abandoning a reader that still holds its section would break mutual
// exclusion, so degradation here is observability, not escape.
func (l *Lock) waitReader(s *slot) {
	if s.state.Load() == 0 {
		return
	}
	b := signals.NewBackoff(l.wait)
	start := time.Now()
	tripped := false
	for s.state.Load() != 0 {
		l.faults.At(fault.LockWriterWait)
		if b.Pause() {
			l.Stats.BackoffParks.Add(1)
			if d := l.wait.Deadline; d > 0 && !tripped {
				if stall := time.Since(start); stall > d {
					l.Stats.WatchdogTrips.Add(1)
					l.Stats.StallNs.Observe(stall.Nanoseconds())
					tripped = true
				}
			}
		}
	}
}

// waitHeuristic is the ARW+ writer wait: spin for the budget hoping the
// readers acknowledge at their own poll points; signal only the silent
// ones.
func (l *Lock) waitHeuristic(slots []*slot, self *slot) {
	e := l.epoch.Load()
	satisfied := func(s *slot) bool {
		return s.ackEpoch.Load() == e || s.state.Load() == 0
	}
	pendingCount := func() int {
		n := 0
		for _, s := range slots {
			if s != self && !satisfied(s) {
				n++
			}
		}
		return n
	}
	for i := 0; i < l.budget; i++ {
		if pendingCount() == 0 {
			for _, s := range slots {
				if s != self {
					l.Stats.AcksInTime.Add(1)
				}
			}
			return
		}
		if i%64 == 63 {
			runtime.Gosched()
		}
	}
	// Budget expired: signal the stragglers.
	delay := l.roundTripCost()
	for _, s := range slots {
		if s == self {
			continue
		}
		if satisfied(s) {
			l.Stats.AcksInTime.Add(1)
			continue
		}
		if delay > 0 {
			signals.Spin(delay)
			l.Stats.SignalsSent.Add(1)
		}
		b := signals.NewBackoff(l.wait)
		start := time.Now()
		tripped := false
		for !satisfied(s) {
			l.faults.At(fault.LockWriterWait)
			if b.Pause() {
				l.Stats.BackoffParks.Add(1)
				if d := l.wait.Deadline; d > 0 && !tripped {
					if stall := time.Since(start); stall > d {
						l.Stats.WatchdogTrips.Add(1)
						l.Stats.StallNs.Observe(stall.Nanoseconds())
						tripped = true
					}
				}
			}
		}
	}
}

func (l *Lock) roundTripCost() int {
	switch l.mode {
	case core.ModeAsymmetricSW:
		return l.cost.SignalRoundTrip
	case core.ModeAsymmetricHW:
		return l.cost.HWRoundTrip
	default:
		return 0
	}
}

// Unlock releases the write lock.
func (l *Lock) Unlock() {
	l.intent.Store(0)
	l.writeMu.Unlock()
}

// validate is used by tests: a Lock must have at least one registered
// reader before a symmetric writer can fence against slot 0.
func (l *Lock) validate() error {
	l.regMu.Lock()
	defer l.regMu.Unlock()
	if len(l.slots) == 0 {
		return fmt.Errorf("rwlock: no registered readers")
	}
	return nil
}
