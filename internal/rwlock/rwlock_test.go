package rwlock

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func variants() map[string]func() *Lock {
	return map[string]func() *Lock{
		"SRW":    func() *Lock { return New(core.ModeSymmetric, core.ZeroCosts()) },
		"ARW-sw": func() *Lock { return New(core.ModeAsymmetricSW, core.ZeroCosts()) },
		"ARW-hw": func() *Lock { return New(core.ModeAsymmetricHW, core.ZeroCosts()) },
		"ARW+sw": func() *Lock { return New(core.ModeAsymmetricSW, core.ZeroCosts(), WithWaitingHeuristic(0)) },
		"ARW+hw": func() *Lock { return New(core.ModeAsymmetricHW, core.ZeroCosts(), WithWaitingHeuristic(256)) },
	}
}

func TestVariantNames(t *testing.T) {
	if v := New(core.ModeSymmetric, core.ZeroCosts()).Variant(); v != "SRW" {
		t.Errorf("Variant = %q, want SRW", v)
	}
	if v := New(core.ModeAsymmetricSW, core.ZeroCosts()).Variant(); v != "ARW" {
		t.Errorf("Variant = %q, want ARW", v)
	}
	if v := New(core.ModeAsymmetricSW, core.ZeroCosts(), WithWaitingHeuristic(0)).Variant(); v != "ARW+" {
		t.Errorf("Variant = %q, want ARW+", v)
	}
}

func TestUncontendedReadWrite(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			r := l.NewReader()
			if err := l.validate(); err != nil {
				t.Fatal(err)
			}
			r.Lock()
			r.Unlock()
			l.Lock()
			l.Unlock()
			r.Lock()
			r.Unlock()
			if l.Stats.Reads.Load() != 2 || l.Stats.Writes.Load() != 1 {
				t.Errorf("stats: %d reads / %d writes", l.Stats.Reads.Load(), l.Stats.Writes.Load())
			}
		})
	}
}

func TestWriterExcludesReaders(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			const readers = 3
			const iters = 2000
			var stop atomic.Bool
			var inCS atomic.Int32    // readers inside read sections
			var writing atomic.Int32 // writer inside write section
			var violations atomic.Int32

			var wg sync.WaitGroup
			for i := 0; i < readers; i++ {
				r := l.NewReader()
				wg.Add(1)
				go func() {
					defer wg.Done()
					for !stop.Load() {
						r.Lock()
						inCS.Add(1)
						if writing.Load() != 0 {
							violations.Add(1)
						}
						inCS.Add(-1)
						r.Unlock()
					}
				}()
			}
			for i := 0; i < iters/100; i++ {
				l.Lock()
				writing.Store(1)
				if inCS.Load() != 0 {
					violations.Add(1)
				}
				time.Sleep(50 * time.Microsecond) // widen the window
				if inCS.Load() != 0 {
					violations.Add(1)
				}
				writing.Store(0)
				l.Unlock()
			}
			stop.Store(true)
			wg.Wait()
			if v := violations.Load(); v != 0 {
				t.Errorf("%d exclusion violations", v)
			}
		})
	}
}

func TestReaderTurnsWriter(t *testing.T) {
	for name, mk := range variants() {
		t.Run(name, func(t *testing.T) {
			l := mk()
			r1 := l.NewReader()
			r2 := l.NewReader()
			var stop atomic.Bool
			var shared, mirror int64 // protected: written under write lock

			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for !stop.Load() {
					r2.Lock()
					if shared != mirror {
						t.Error("torn read: writer not excluded")
						r2.Unlock()
						return
					}
					r2.Unlock()
				}
			}()

			for i := 0; i < 50; i++ {
				r1.Lock()
				r1.Unlock()
				r1.LockWrite() // reader-turned-writer, own slot skipped
				shared++
				mirror++
				r1.UnlockWrite()
			}
			stop.Store(true)
			wg.Wait()
			if shared != 50 {
				t.Errorf("writes lost: %d", shared)
			}
		})
	}
}

func TestTwoWritersSerialize(t *testing.T) {
	l := New(core.ModeAsymmetricHW, core.ZeroCosts(), WithWaitingHeuristic(64))
	l.NewReader() // at least one registered reader
	var depth atomic.Int32
	var bad atomic.Int32
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 200; j++ {
				l.Lock()
				if depth.Add(1) != 1 {
					bad.Add(1)
				}
				depth.Add(-1)
				l.Unlock()
			}
		}()
	}
	wg.Wait()
	if bad.Load() != 0 {
		t.Errorf("%d concurrent writers", bad.Load())
	}
}

func TestARWWriterPaysSignalPerReader(t *testing.T) {
	cost := core.ZeroCosts()
	cost.SignalRoundTrip = 10 // nonzero so signals are counted
	l := New(core.ModeAsymmetricSW, cost)
	for i := 0; i < 5; i++ {
		l.NewReader()
	}
	l.Lock()
	l.Unlock()
	if got := l.Stats.SignalsSent.Load(); got != 5 {
		t.Errorf("signals sent = %d, want 5 (one per registered reader)", got)
	}
}

func TestARWPlusAvoidsSignalsWhenReadersAck(t *testing.T) {
	cost := core.ZeroCosts()
	cost.SignalRoundTrip = 10
	l := New(core.ModeAsymmetricSW, cost, WithWaitingHeuristic(1<<20))
	// Idle readers have state==0, so they are satisfied within the
	// window without any signal.
	for i := 0; i < 5; i++ {
		l.NewReader()
	}
	l.Lock()
	l.Unlock()
	if got := l.Stats.SignalsSent.Load(); got != 0 {
		t.Errorf("ARW+ sent %d signals to idle readers, want 0", got)
	}
	if got := l.Stats.AcksInTime.Load(); got != 5 {
		t.Errorf("acks in time = %d, want 5", got)
	}
}

func TestSRWWriterSendsNoSignals(t *testing.T) {
	cost := core.ZeroCosts()
	cost.SignalRoundTrip = 10
	l := New(core.ModeSymmetric, cost)
	l.NewReader()
	l.Lock()
	l.Unlock()
	if got := l.Stats.SignalsSent.Load(); got != 0 {
		t.Errorf("SRW writer sent %d signals", got)
	}
}

func TestValidateRequiresReaders(t *testing.T) {
	l := New(core.ModeSymmetric, core.ZeroCosts())
	if err := l.validate(); err == nil {
		t.Error("validate accepted a lock with no readers")
	}
}

func TestReaderRetreatsOnWriterIntent(t *testing.T) {
	l := New(core.ModeAsymmetricHW, core.ZeroCosts())
	r := l.NewReader()
	// Raise writer intent by hand, let the reader hit the conflict path,
	// then clear it from another goroutine.
	l.writeMu.Lock()
	l.epoch.Add(1)
	l.intent.Store(1)
	go func() {
		time.Sleep(5 * time.Millisecond)
		l.intent.Store(0)
		l.writeMu.Unlock()
	}()
	r.Lock() // must retreat, wait, then enter
	r.Unlock()
	if l.Stats.Retreats.Load() == 0 {
		t.Error("reader did not retreat while intent was raised")
	}
}
