// Command lbmfbench regenerates the experiments of "Location-Based
// Memory Fences" (SPAA 2011) and prints paper-style tables.
//
// Usage:
//
//	lbmfbench -exp all
//	lbmfbench -exp fig5a -scale medium -reps 10
//	lbmfbench -exp fig6b -dur 10s -threads 1,2,4,8,16
//	lbmfbench -exp dekker,overhead,fig4
//	lbmfbench -exp all -scale test -bench-json BENCH_1.json
//	lbmfbench -exp chaos -faults 7,11,13
//
// Experiments: dekker (§1 serial slowdown), fig4 (benchmark table),
// fig5a / fig5b (ACilk-5 vs Cilk-5, serial / parallel), fig6a / fig6b
// (ARW / ARW+ vs SRW read throughput), overhead (§5 round-trip costs),
// theorems (Section 4, machine-checked), litmus_por (partial-order
// reduction: reduced-vs-unreduced state counts over the protocol
// suite, with the preservation contract checked), litmus_pso (the
// classic catalog under per-address store buffers, with the
// TSO-embedding contract checked), litmus_fuzz (differential fuzzing:
// generated .litmus scenarios cross-checked over the
// engine-configuration matrix), ablation, packetproc, chaos
// (paper invariants under seeded fault injection; -faults picks the
// schedule seeds).
//
// -bench-json writes the versioned machine-readable schema that
// cmd/benchdiff consumes (pass "auto" to pick the next free
// BENCH_<n>.json); -json keeps the legacy per-experiment detail dump.
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/bench"
	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/workloads"
)

func main() {
	var (
		exp      = flag.String("exp", "all", "comma-separated experiments (dekker|fig4|fig5a|fig5b|fig6a|fig6b|overhead|theorems|litmus_por|litmus_pso|litmus_compress|litmus_fuzz|litmus_resume|ablation|packetproc|chaos) or 'all'")
		scale    = flag.String("scale", "small", "workload scale: test|small|medium|paper")
		reps     = flag.Int("reps", 0, "repetitions per measurement (0 = default)")
		procs    = flag.Int("procs", 0, "workers for parallel runs (0 = default)")
		dur      = flag.Duration("dur", 0, "duration per fig6 cell (0 = default)")
		threads  = flag.String("threads", "", "comma-separated fig6 thread counts")
		ratios   = flag.String("ratios", "", "comma-separated fig6 read:write ratios")
		faults   = flag.String("faults", "", "comma-separated chaos fault-schedule seeds")
		swMode   = flag.Bool("sw", true, "use the software-prototype cost profile for asymmetric runs (false = projected LE/ST hardware)")
		jsonOut  = flag.String("json", "", "write legacy per-experiment detail JSON to this file")
		benchOut = flag.String("bench-json", "", "write versioned bench schema to this file ('auto' = next free BENCH_<n>.json)")
	)
	flag.Parse()

	opt := harness.Defaults()
	switch *scale {
	case "test":
		opt.Scale = workloads.ScaleTest
	case "small":
		opt.Scale = workloads.ScaleSmall
	case "medium":
		opt.Scale = workloads.ScaleMedium
	case "paper":
		opt.Scale = workloads.ScalePaper
	default:
		fatal("unknown -scale %q", *scale)
	}
	if *reps > 0 {
		opt.Reps = *reps
	}
	if *procs > 0 {
		opt.Procs = *procs
	}
	if *dur > 0 {
		opt.CellDuration = *dur
	}
	if *threads != "" {
		opt.ThreadCounts = parseInts(*threads)
	}
	if *ratios != "" {
		opt.ReadWriteRatios = parseInts(*ratios)
	}
	if *faults != "" {
		opt.FaultSeeds = parseSeeds(*faults)
	}
	asymMode := core.ModeAsymmetricSW
	if !*swMode {
		asymMode = core.ModeAsymmetricHW
	}

	// Validate the whole experiment list before running anything: a typo
	// in "-exp fig5a,fig6x" must not burn minutes of fig5a first.
	names := parseExperiments(*exp)

	legacy := map[string]any{}
	file := bench.NewFile(*scale, opt.Reps, opt.Procs)

	start := time.Now()
	theoremsFailed := false
	chaosFailed := false
	for _, name := range names {
		ran, err := bench.RunExperiment(name, opt, asymMode)
		if err != nil && !errors.Is(err, bench.ErrTheoremsFailed) && !errors.Is(err, bench.ErrChaosFailed) {
			fatal("%v", err)
		}
		for _, t := range ran.Tables {
			fmt.Println(t)
		}
		legacy[name] = ran.Exp.Detail
		file.Experiments[name] = ran.Exp
		if errors.Is(err, bench.ErrTheoremsFailed) {
			theoremsFailed = true
		}
		if errors.Is(err, bench.ErrChaosFailed) {
			chaosFailed = true
		}
	}
	file.ElapsedSeconds = time.Since(start).Seconds()
	file.Timestamp = time.Now().UTC().Format(time.RFC3339)

	if *jsonOut != "" {
		data, err := json.MarshalIndent(legacy, "", "  ")
		check(err)
		check(os.WriteFile(*jsonOut, data, 0o644))
		fmt.Printf("wrote %s\n", *jsonOut)
	}
	if *benchOut != "" {
		path := *benchOut
		if path == "auto" {
			path = nextBenchFile()
		}
		check(bench.Write(path, file))
		fmt.Printf("wrote %s\n", path)
	}
	if theoremsFailed {
		fatal("theorem checks FAILED")
	}
	if chaosFailed {
		fatal("chaos invariants FAILED")
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

// parseExperiments splits and validates -exp. "all" (alone or in a
// list) expands to the canonical order; unknown names abort before any
// experiment runs.
func parseExperiments(s string) []string {
	var names []string
	seen := map[string]bool{}
	add := func(n string) {
		if !seen[n] {
			seen[n] = true
			names = append(names, n)
		}
	}
	for _, part := range strings.Split(s, ",") {
		name := strings.TrimSpace(part)
		switch {
		case name == "":
			fatal("empty experiment name in -exp %q", s)
		case name == "all":
			for _, n := range bench.Names {
				add(n)
			}
		case bench.Known(name):
			add(name)
		default:
			fatal("unknown experiment %q (known: %s, all)", name, strings.Join(bench.Names, ", "))
		}
	}
	if len(names) == 0 {
		fatal("no experiments in -exp %q", s)
	}
	return names
}

// nextBenchFile picks the first unused BENCH_<n>.json in the working
// directory.
func nextBenchFile() string {
	for n := 1; ; n++ {
		path := fmt.Sprintf("BENCH_%d.json", n)
		if _, err := os.Stat(path); os.IsNotExist(err) {
			return path
		}
	}
}

func parseSeeds(s string) []uint64 {
	var out []uint64
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.ParseUint(strings.TrimSpace(part), 10, 64)
		if err != nil {
			fatal("bad seed list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lbmfbench: "+format+"\n", args...)
	os.Exit(1)
}
