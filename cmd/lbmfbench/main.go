// Command lbmfbench regenerates the experiments of "Location-Based
// Memory Fences" (SPAA 2011) and prints paper-style tables.
//
// Usage:
//
//	lbmfbench -exp all
//	lbmfbench -exp fig5a -scale medium -reps 10
//	lbmfbench -exp fig6b -dur 10s -threads 1,2,4,8,16
//	lbmfbench -exp dekker
//	lbmfbench -exp overhead
//	lbmfbench -exp theorems
//	lbmfbench -exp fig4
//
// Experiments: dekker (§1 serial slowdown), fig4 (benchmark table),
// fig5a / fig5b (ACilk-5 vs Cilk-5, serial / parallel), fig6a / fig6b
// (ARW / ARW+ vs SRW read throughput), overhead (§5 round-trip costs),
// theorems (Section 4, machine-checked).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"repro/internal/core"
	"repro/internal/harness"
	"repro/internal/stats"
	"repro/internal/workloads"
)

func main() {
	var (
		exp     = flag.String("exp", "all", "experiment: dekker|fig4|fig5a|fig5b|fig6a|fig6b|overhead|theorems|ablation|packetproc|all")
		scale   = flag.String("scale", "small", "workload scale: test|small|medium|paper")
		reps    = flag.Int("reps", 0, "repetitions per measurement (0 = default)")
		procs   = flag.Int("procs", 0, "workers for parallel runs (0 = default)")
		dur     = flag.Duration("dur", 0, "duration per fig6 cell (0 = default)")
		threads = flag.String("threads", "", "comma-separated fig6 thread counts")
		ratios  = flag.String("ratios", "", "comma-separated fig6 read:write ratios")
		swMode  = flag.Bool("sw", true, "use the software-prototype cost profile for asymmetric runs (false = projected LE/ST hardware)")
		jsonOut = flag.String("json", "", "write structured results to this JSON file")
	)
	flag.Parse()

	opt := harness.Defaults()
	switch *scale {
	case "test":
		opt.Scale = workloads.ScaleTest
	case "small":
		opt.Scale = workloads.ScaleSmall
	case "medium":
		opt.Scale = workloads.ScaleMedium
	case "paper":
		opt.Scale = workloads.ScalePaper
	default:
		fatal("unknown -scale %q", *scale)
	}
	if *reps > 0 {
		opt.Reps = *reps
	}
	if *procs > 0 {
		opt.Procs = *procs
	}
	if *dur > 0 {
		opt.CellDuration = *dur
	}
	if *threads != "" {
		opt.ThreadCounts = parseInts(*threads)
	}
	if *ratios != "" {
		opt.ReadWriteRatios = parseInts(*ratios)
	}
	asymMode := core.ModeAsymmetricSW
	if !*swMode {
		asymMode = core.ModeAsymmetricHW
	}

	results := map[string]any{}
	record := func(name string, v any) {
		if *jsonOut != "" {
			results[name] = v
		}
	}

	run := func(name string) {
		switch name {
		case "dekker":
			res, err := harness.RunDekker(opt)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "fig4":
			printFig4()
		case "fig5a":
			res, err := harness.RunFig5(opt, false, asymMode)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "fig5b":
			res, err := harness.RunFig5(opt, true, asymMode)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "fig6a":
			res, err := harness.RunFig6(opt, false, asymMode)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "fig6b":
			res, err := harness.RunFig6(opt, true, asymMode)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "overhead":
			res, err := harness.RunOverhead(opt)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "ablation":
			res, err := harness.RunAblations(opt)
			check(err)
			record(name, res)
			for _, t := range res.Tables() {
				fmt.Println(t)
			}
		case "packetproc":
			res, err := harness.RunPacketProc(opt)
			check(err)
			record(name, res)
			fmt.Println(res.Table())
		case "theorems":
			res := harness.RunTheorems()
			record(name, res)
			fmt.Println(res.Table())
			if !res.AllPass() {
				fatal("theorem checks FAILED")
			}
		default:
			fatal("unknown experiment %q", name)
		}
	}

	start := time.Now()
	if *exp == "all" {
		for _, name := range []string{"theorems", "dekker", "overhead", "fig4", "fig5a", "fig5b", "fig6a", "fig6b", "ablation", "packetproc"} {
			run(name)
		}
	} else {
		run(*exp)
	}
	if *jsonOut != "" {
		writeJSON(*jsonOut, results)
	}
	fmt.Printf("total: %v\n", time.Since(start).Round(time.Millisecond))
}

// writeJSON persists the structured experiment results.
func writeJSON(path string, results map[string]any) {
	data, err := json.MarshalIndent(results, "", "  ")
	check(err)
	check(os.WriteFile(path, data, 0o644))
	fmt.Printf("wrote %s\n", path)
}

func printFig4() {
	t := stats.NewTable("Fig. 4: the 12 benchmark applications",
		"benchmark", "paper input", "description")
	for _, s := range workloads.All() {
		t.AddRow(s.Name, s.PaperInput, s.Description)
	}
	fmt.Println(t)
}

func parseInts(s string) []int {
	var out []int
	for _, part := range strings.Split(s, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil {
			fatal("bad integer list %q: %v", s, err)
		}
		out = append(out, v)
	}
	return out
}

func check(err error) {
	if err != nil {
		fatal("%v", err)
	}
}

func fatal(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "lbmfbench: "+format+"\n", args...)
	os.Exit(1)
}
