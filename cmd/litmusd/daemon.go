// litmusd is a long-running, kill-safe job runner for litmus files: it
// watches a spool directory for *.litmus jobs, explores each under a
// bounded worker pool with periodic checkpoints, and survives both its
// own death (orphaned jobs resume from their last committed checkpoint
// at the next start) and individual job misbehaviour (per-job timeouts,
// backoff-retried transient failures).
//
// Spool layout under -dir:
//
//	spool/<name>.litmus   submitted jobs (drop files here)
//	work/<name>/          claimed jobs: job.litmus + ckpt/ + logs
//	done/<name>/          completed jobs: job.litmus + verdict.json
//	failed/<name>/        failed jobs: job.litmus + error.txt
//
// Claiming is a rename from spool/ into a private work/ directory, so a
// job is processed at most once; killing the daemon between the claim
// and the verdict leaves the job in work/, where the next start picks
// it up — resuming the exploration from its checkpoint when one
// committed, restarting it otherwise.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/fault"
	"repro/internal/litmus"
	"repro/internal/litmuslang"
	"repro/internal/obs"
	"repro/internal/signals"
)

// config carries the daemon's resolved settings; zero fields take the
// defaults applied in newDaemon.
type config struct {
	// Root is the spool root; spool/work/done/failed live under it.
	Root string
	// Poll is the spool scan interval.
	Poll time.Duration
	// Jobs bounds how many jobs run concurrently.
	Jobs int
	// Workers is the per-job exploration worker count (0 = GOMAXPROCS).
	Workers int
	// JobTimeout interrupts a job's exploration after this long and
	// fails the job (0 = no limit).
	JobTimeout time.Duration
	// CkptEvery checkpoints a running job every N claimed states.
	CkptEvery int
	// Retries is how many times a transiently-failed job is retried
	// (resuming from its checkpoint) before it is failed for good.
	Retries int
	// MaxStates bounds each job's exploration (0 = engine default).
	MaxStates int
	// Faults is the chaos schedule threaded into every job's engine
	// options; tests use it to crash explorations at checkpoint
	// boundaries. Nil in production.
	Faults *fault.Injector
	// Log receives the daemon's operational log lines.
	Log *log.Logger
}

// jobVerdict is the durable result written to done/<name>/verdict.json.
type jobVerdict struct {
	Name        string         `json:"name"`
	Threads     int            `json:"threads"`
	States      int            `json:"states"`
	Transitions int            `json:"transitions"`
	Outcomes    map[string]int `json:"outcomes"`
	Deadlocks   int            `json:"deadlocks"`
	Violations  int            `json:"violations"`
	Property    string         `json:"property,omitempty"`
	Pass        bool           `json:"pass"`
	Resumed     bool           `json:"resumed"`
	Attempts    int            `json:"attempts"`
	ElapsedMs   int64          `json:"elapsed_ms"`
}

// metricsPayload is the /metrics JSON: daemon-level job counters plus
// the merged engine observability of every exploration run so far.
type metricsPayload struct {
	Claimed   uint64       `json:"jobs_claimed"`
	Completed uint64       `json:"jobs_completed"`
	Failed    uint64       `json:"jobs_failed"`
	Retried   uint64       `json:"jobs_retried"`
	Resumed   uint64       `json:"jobs_resumed"`
	Active    int64        `json:"jobs_active"`
	Draining  bool         `json:"draining"`
	Engine    obs.Snapshot `json:"engine"`
}

type daemon struct {
	cfg                       config
	spool, work, done, failed string

	drain atomic.Bool   // set once: stop claiming, interrupt in-flight jobs
	sem   chan struct{} // job slots
	wg    sync.WaitGroup

	claimed   atomic.Uint64
	completed atomic.Uint64
	failures  atomic.Uint64
	retried   atomic.Uint64
	resumed   atomic.Uint64
	active    atomic.Int64

	mu     sync.Mutex
	intrs  map[*atomic.Bool]struct{} // in-flight jobs' interrupt flags
	engine obs.Snapshot              // merged per-job engine obs
}

func newDaemon(cfg config) (*daemon, error) {
	if cfg.Root == "" {
		return nil, errors.New("litmusd: spool root required")
	}
	if cfg.Poll <= 0 {
		cfg.Poll = 200 * time.Millisecond
	}
	if cfg.Jobs <= 0 {
		cfg.Jobs = 2
	}
	if cfg.CkptEvery <= 0 {
		cfg.CkptEvery = 5000
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.Log == nil {
		cfg.Log = log.New(os.Stderr, "litmusd: ", log.LstdFlags)
	}
	d := &daemon{
		cfg:    cfg,
		spool:  filepath.Join(cfg.Root, "spool"),
		work:   filepath.Join(cfg.Root, "work"),
		done:   filepath.Join(cfg.Root, "done"),
		failed: filepath.Join(cfg.Root, "failed"),
		sem:    make(chan struct{}, cfg.Jobs),
		intrs:  make(map[*atomic.Bool]struct{}),
	}
	for _, dir := range []string{d.spool, d.work, d.done, d.failed} {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return nil, fmt.Errorf("litmusd: creating %s: %w", dir, err)
		}
	}
	return d, nil
}

// serve is the daemon's main loop: recover orphans, then scan the spool
// until stop closes, then drain. It returns once every in-flight job
// has stopped (completed, failed, or checkpointed-and-parked).
func (d *daemon) serve(stop <-chan struct{}) {
	if n := d.recoverOrphans(); n > 0 {
		d.cfg.Log.Printf("recovered %d orphaned job(s) from work/", n)
	}
	for {
		d.scanOnce()
		select {
		case <-stop:
			d.drainAndWait()
			return
		case <-time.After(d.cfg.Poll):
		}
	}
}

// recoverOrphans re-dispatches every job a previous daemon left in
// work/: jobs with a committed checkpoint resume mid-exploration,
// jobs without one restart from scratch. Empty claim debris is removed.
func (d *daemon) recoverOrphans() int {
	ents, err := os.ReadDir(d.work)
	if err != nil {
		d.cfg.Log.Printf("scanning work/: %v", err)
		return 0
	}
	n := 0
	for _, e := range ents {
		if !e.IsDir() {
			continue
		}
		jobDir := filepath.Join(d.work, e.Name())
		if _, err := os.Stat(filepath.Join(jobDir, "job.litmus")); err != nil {
			os.Remove(jobDir) // claim debris: dir created, rename never happened
			continue
		}
		d.claimed.Add(1)
		d.dispatch(e.Name())
		n++
	}
	return n
}

// scanOnce claims and dispatches every ready spool job, in name order.
func (d *daemon) scanOnce() int {
	ents, err := os.ReadDir(d.spool)
	if err != nil {
		d.cfg.Log.Printf("scanning spool/: %v", err)
		return 0
	}
	names := make([]string, 0, len(ents))
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".litmus") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	n := 0
	for _, fname := range names {
		if d.drain.Load() {
			break
		}
		name := strings.TrimSuffix(fname, ".litmus")
		jobDir := filepath.Join(d.work, name)
		if err := os.MkdirAll(jobDir, 0o755); err != nil {
			d.cfg.Log.Printf("claiming %s: %v", name, err)
			continue
		}
		if err := os.Rename(filepath.Join(d.spool, fname), filepath.Join(jobDir, "job.litmus")); err != nil {
			continue // another claimer won, or the file vanished
		}
		d.claimed.Add(1)
		d.dispatch(name)
		n++
	}
	return n
}

// dispatch runs the claimed job on the bounded pool; it blocks for a
// slot, which backpressures the spool scan when all slots are busy.
func (d *daemon) dispatch(name string) {
	d.sem <- struct{}{}
	d.wg.Add(1)
	go func() {
		defer func() { <-d.sem; d.wg.Done() }()
		d.active.Add(1)
		defer d.active.Add(-1)
		d.runJob(name)
	}()
}

// drainAndWait stops new claims, interrupts every in-flight job (each
// checkpoints at its next barrier and parks in work/ for the next
// start), and waits for the pool to empty.
func (d *daemon) drainAndWait() {
	d.drain.Store(true)
	d.mu.Lock()
	for b := range d.intrs {
		b.Store(true)
	}
	d.mu.Unlock()
	d.wg.Wait()
}

// registerInterrupt tracks a job's interrupt flag for the drain
// broadcast; the returned func unregisters it.
func (d *daemon) registerInterrupt(b *atomic.Bool) func() {
	d.mu.Lock()
	d.intrs[b] = struct{}{}
	d.mu.Unlock()
	if d.drain.Load() {
		b.Store(true)
	}
	return func() {
		d.mu.Lock()
		delete(d.intrs, b)
		d.mu.Unlock()
	}
}

// errPermanent wraps failures that no retry can fix (unreadable or
// uncompilable job files); everything else is treated as transient.
type errPermanent struct{ err error }

func (e errPermanent) Error() string { return e.err.Error() }
func (e errPermanent) Unwrap() error { return e.err }

// runJob drives one claimed job to a terminal state: done/, failed/, or
// (on drain) parked in work/ behind its checkpoint. Transient failures
// — an exploration that died mid-run — are retried up to cfg.Retries
// times through the signals backoff ladder, each retry resuming from
// the job's last committed checkpoint rather than restarting.
func (d *daemon) runJob(name string) {
	jobDir := filepath.Join(d.work, name)
	ladder := signals.NewBackoff(signals.WaitPolicy{
		SpinIters:  1,
		YieldIters: 1,
		ParkFloor:  time.Millisecond,
		ParkCeil:   100 * time.Millisecond,
	})
	attempts := 0
	everResumed := false
	for {
		attempts++
		start := time.Now()
		res, c, didResume, timedOut, err := d.attempt(jobDir)
		everResumed = everResumed || didResume
		switch {
		case err != nil:
			var perm errPermanent
			if errors.As(err, &perm) || attempts > d.cfg.Retries+1 {
				d.fail(name, jobDir, fmt.Errorf("attempt %d: %w", attempts, err))
				return
			}
			d.retried.Add(1)
			d.cfg.Log.Printf("job %s attempt %d failed transiently (%v); backing off and resuming", name, attempts, err)
			for !ladder.Pause() {
				// escalate through spin/yield until the ladder parks:
				// each retry sleeps, with capped exponential growth
			}
		case timedOut:
			d.fail(name, jobDir, fmt.Errorf("timed out after %v (%d states explored)", d.cfg.JobTimeout, res.States))
			return
		case res.Interrupted:
			// Drain: the run checkpointed at the interrupt barrier and
			// stays claimed in work/ for the next daemon start.
			d.cfg.Log.Printf("job %s interrupted for drain after %d states; parked behind checkpoint", name, res.States)
			return
		default:
			d.mu.Lock()
			d.engine.Merge(res.Obs)
			d.mu.Unlock()
			d.complete(name, jobDir, res, c, everResumed, attempts, time.Since(start))
			return
		}
	}
}

// attempt runs (or resumes) one exploration of the job in jobDir.
func (d *daemon) attempt(jobDir string) (res litmus.Result, c *litmuslang.Compiled, resumed, timedOut bool, err error) {
	src, err := os.ReadFile(filepath.Join(jobDir, "job.litmus"))
	if err != nil {
		return res, nil, false, false, errPermanent{err}
	}
	c, err = litmuslang.CompileSource(string(src))
	if err != nil {
		return res, nil, false, false, errPermanent{fmt.Errorf("compile: %w", err)}
	}

	var intr atomic.Bool
	unregister := d.registerInterrupt(&intr)
	defer unregister()
	var timerFired atomic.Bool
	if d.cfg.JobTimeout > 0 {
		t := time.AfterFunc(d.cfg.JobTimeout, func() {
			timerFired.Store(true)
			intr.Store(true)
		})
		defer t.Stop()
	}

	ckptDir := filepath.Join(jobDir, "ckpt")
	opts := litmus.Options{
		Properties: c.Properties(),
		Workers:    d.cfg.Workers,
		MaxStates:  d.cfg.MaxStates,
		Checkpoint: litmus.CheckpointOptions{Dir: ckptDir, EveryStates: d.cfg.CkptEvery},
		Interrupt:  &intr,
		Faults:     d.cfg.Faults,
	}

	if _, statErr := os.Stat(filepath.Join(ckptDir, "checkpoint.lbmf")); statErr == nil {
		res, err = litmus.Resume(ckptDir, c.Build, opts)
		switch {
		case err == nil:
			resumed = true
		case errors.Is(err, litmus.ErrCheckpointTruncated),
			errors.Is(err, litmus.ErrCheckpointCorrupt),
			errors.Is(err, litmus.ErrCheckpointMismatch):
			// The checkpoint is unusable; losing it only loses
			// progress, so restart the exploration from scratch.
			d.cfg.Log.Printf("job %s: discarding unusable checkpoint: %v", filepath.Base(jobDir), err)
			if err = os.RemoveAll(ckptDir); err != nil {
				return res, c, false, false, err
			}
			res = litmus.Explore(c.Build, opts)
			err = nil
		default:
			return res, c, false, false, err
		}
	} else {
		res = litmus.Explore(c.Build, opts)
	}
	if resumed {
		d.resumed.Add(1)
	}
	if res.Crashed {
		// An armed fault killed the exploration mid-run — the in-process
		// stand-in for the process dying. The on-disk checkpoint holds
		// whatever committed; report transient so the retry loop resumes.
		return res, c, resumed, false, errors.New("exploration crashed")
	}
	return res, c, resumed, timerFired.Load(), nil
}

// complete writes the verdict and moves the job to done/.
func (d *daemon) complete(name, jobDir string, res litmus.Result, c *litmuslang.Compiled, resumed bool, attempts int, elapsed time.Duration) {
	outcomes := make(map[string]int, len(res.Outcomes))
	for o, n := range res.Outcomes {
		outcomes[string(o)] = n
	}
	v := jobVerdict{
		Name:        c.Name,
		Threads:     len(c.Programs),
		States:      res.States,
		Transitions: res.Transitions,
		Outcomes:    outcomes,
		Deadlocks:   res.Deadlocks,
		Violations:  res.Violations,
		Property:    c.PropertyDoc,
		Pass:        res.Violations == 0 && !res.Truncated,
		Resumed:     resumed,
		Attempts:    attempts,
		ElapsedMs:   elapsed.Milliseconds(),
	}
	data, err := json.MarshalIndent(v, "", "  ")
	if err == nil {
		err = os.WriteFile(filepath.Join(jobDir, "verdict.json"), append(data, '\n'), 0o644)
	}
	if err != nil {
		d.fail(name, jobDir, fmt.Errorf("writing verdict: %w", err))
		return
	}
	os.RemoveAll(filepath.Join(jobDir, "ckpt")) // verdict written; snapshots are dead weight
	if err := d.moveJob(jobDir, filepath.Join(d.done, name)); err != nil {
		d.cfg.Log.Printf("job %s: moving to done/: %v", name, err)
		d.failures.Add(1)
		return
	}
	d.completed.Add(1)
	verdict := "pass"
	if !v.Pass {
		verdict = "FAIL"
	}
	d.cfg.Log.Printf("job %s: %s (%d states, %d violations, attempts=%d, resumed=%v)",
		name, verdict, v.States, v.Violations, attempts, resumed)
}

// fail records the error and moves the job to failed/.
func (d *daemon) fail(name, jobDir string, jobErr error) {
	d.failures.Add(1)
	d.cfg.Log.Printf("job %s failed: %v", name, jobErr)
	msg := jobErr.Error() + "\n"
	if err := os.WriteFile(filepath.Join(jobDir, "error.txt"), []byte(msg), 0o644); err != nil {
		d.cfg.Log.Printf("job %s: writing error.txt: %v", name, err)
	}
	if err := d.moveJob(jobDir, filepath.Join(d.failed, name)); err != nil {
		d.cfg.Log.Printf("job %s: moving to failed/: %v", name, err)
	}
}

// moveJob renames a work directory to its terminal home, replacing any
// stale result from an earlier submission of the same name.
func (d *daemon) moveJob(from, to string) error {
	if err := os.RemoveAll(to); err != nil {
		return err
	}
	return os.Rename(from, to)
}

// handler serves the daemon's two HTTP endpoints: /healthz (200 while
// serving, 503 once draining) and /metrics (the metricsPayload JSON).
func (d *daemon) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		if d.drain.Load() {
			http.Error(w, "draining", http.StatusServiceUnavailable)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprintln(w, "ok")
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		payload := metricsPayload{
			Claimed:   d.claimed.Load(),
			Completed: d.completed.Load(),
			Failed:    d.failures.Load(),
			Retried:   d.retried.Load(),
			Resumed:   d.resumed.Load(),
			Active:    d.active.Load(),
			Draining:  d.drain.Load(),
		}
		// Marshal under the lock: Merge mutates the snapshot's maps in
		// place while jobs finish.
		d.mu.Lock()
		payload.Engine = d.engine
		data, err := json.MarshalIndent(payload, "", "  ")
		d.mu.Unlock()
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Write(append(data, '\n'))
	})
	return mux
}
