package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	dir := flag.String("dir", "", "spool root directory (required); spool/, work/, done/, failed/ live under it")
	poll := flag.Duration("poll", 200*time.Millisecond, "spool scan interval")
	jobs := flag.Int("jobs", 2, "maximum concurrently running jobs")
	workers := flag.Int("workers", 0, "exploration workers per job (0 = GOMAXPROCS)")
	jobTimeout := flag.Duration("job-timeout", 0, "fail a job whose exploration runs longer than this (0 = no limit)")
	ckptEvery := flag.Int("ckpt-every", 5000, "checkpoint a running job every N claimed states")
	retries := flag.Int("retries", 2, "retry budget for transiently-failed jobs (each retry resumes from the checkpoint)")
	maxStates := flag.Int("max-states", 0, "per-job state budget (0 = engine default)")
	httpAddr := flag.String("http", "", "serve /healthz and /metrics on this address (empty = no HTTP)")
	flag.Parse()

	if err := validateFlags(*dir, *jobs, *ckptEvery, *retries); err != nil {
		fmt.Fprintln(os.Stderr, err)
		flag.Usage()
		os.Exit(2)
	}

	logger := log.New(os.Stderr, "litmusd: ", log.LstdFlags)
	d, err := newDaemon(config{
		Root:       *dir,
		Poll:       *poll,
		Jobs:       *jobs,
		Workers:    *workers,
		JobTimeout: *jobTimeout,
		CkptEvery:  *ckptEvery,
		Retries:    *retries,
		MaxStates:  *maxStates,
		Log:        logger,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(2)
	}

	if *httpAddr != "" {
		ln, err := net.Listen("tcp", *httpAddr)
		if err != nil {
			fmt.Fprintf(os.Stderr, "litmusd: listening on %s: %v\n", *httpAddr, err)
			os.Exit(2)
		}
		logger.Printf("serving /healthz and /metrics on %s", ln.Addr())
		srv := &http.Server{Handler: d.handler()}
		go func() {
			if err := srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
				logger.Printf("http server: %v", err)
			}
		}()
		defer srv.Close()
	}

	// SIGTERM/SIGINT start a graceful drain: no new claims, in-flight
	// jobs checkpoint at their next barrier and park in work/ for the
	// next start.
	stop := make(chan struct{})
	sigc := make(chan os.Signal, 2)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	go func() {
		s := <-sigc
		logger.Printf("received %v; draining (in-flight jobs checkpoint and park)", s)
		close(stop)
	}()

	logger.Printf("watching %s (jobs=%d, ckpt-every=%d, retries=%d)", *dir, *jobs, *ckptEvery, *retries)
	d.serve(stop)
	logger.Printf("drained; exiting")
}

// validateFlags rejects nonsensical flag combinations before any disk
// state is touched.
func validateFlags(dir string, jobs, ckptEvery, retries int) error {
	switch {
	case dir == "":
		return errors.New("litmusd: -dir is required")
	case jobs <= 0:
		return errors.New("litmusd: -jobs must be positive")
	case ckptEvery <= 0:
		return errors.New("litmusd: -ckpt-every must be positive")
	case retries < 0:
		return errors.New("litmusd: -retries must be non-negative")
	}
	return nil
}
