//go:build race

package main

// raceEnabled reports whether the race detector is active; the
// long-exploration tests shrink their state budgets under it (the
// instrumentation slows the engine an order of magnitude).
const raceEnabled = true
