//go:build !race

package main

// raceEnabled reports whether the race detector is active.
const raceEnabled = false
