package main

import (
	"encoding/json"
	"io"
	"log"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/fault"
	"repro/internal/litmus"
	"repro/internal/litmuslang"
)

// sbFenced passes: the mfences forbid the relaxed outcome.
const sbFenced = `litmus "sb+mfence"
config { memwords 16 sbdepth 4 }
shared x @ 4, y @ 5
thread "w0" {
  storei [x], 1
  mfence
  load r0, [y]
  halt
}
thread "w1" {
  storei [y], 1
  mfence
  load r0, [x]
  halt
}
forbid P0:r0=0 & P1:r0=0
`

// sbRelaxed fails: without fences TSO reaches the forbidden outcome.
const sbRelaxed = `litmus "sb"
config { memwords 16 sbdepth 4 }
shared x @ 4, y @ 5
thread "w0" {
  storei [x], 1
  load r0, [y]
  halt
}
thread "w1" {
  storei [y], 1
  load r0, [x]
  halt
}
forbid P0:r0=0 & P1:r0=0
`

// dekkerSrc is the paper's broken Dekker attempt: a medium-size space
// (~1.8k states) with real violations — big enough for mid-run
// checkpoints at a small cadence, small enough to finish instantly.
const dekkerSrc = `litmus "dekker-nofence"
config { memwords 16 sbdepth 4 }
shared l1 @ 0, l2 @ 1, cs0 @ 2, cs1 @ 3
thread "primary" {
  storei [l1], 1
  load r0, [l2]
  bne r0, 0, @skip
  cs.enter
  cs.exit
skip:
  storei [l1], 0
  halt
}
thread "secondary" {
  storei [l2], 1
  load r0, [l1]
  bne r0, 0, @skip
  cs.enter
  cs.exit
skip:
  storei [l2], 0
  halt
}
assert mutex
`

// bigSrc is a 4-thread interleaving bomb (millions of states uncapped):
// the long-running job the timeout and drain tests need.
const bigSrc = `litmus "big"
config { memwords 16 sbdepth 4 }
shared a @ 0, b @ 1, c @ 2, d @ 3
thread "t0" {
  storei [a], 1
  load r0, [b]
  storei [a], 2
  load r1, [c]
  storei [a], 3
  load r2, [d]
  halt
}
thread "t1" {
  storei [b], 1
  load r0, [c]
  storei [b], 2
  load r1, [d]
  storei [b], 3
  load r2, [a]
  halt
}
thread "t2" {
  storei [c], 1
  load r0, [d]
  storei [c], 2
  load r1, [a]
  storei [c], 3
  load r2, [b]
  halt
}
thread "t3" {
  storei [d], 1
  load r0, [a]
  storei [d], 2
  load r1, [b]
  storei [d], 3
  load r2, [c]
  halt
}
`

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name                     string
		dir                      string
		jobs, ckptEvery, retries int
		wantErr                  string // substring, "" = valid
	}{
		{"defaults", "/tmp/spool", 2, 5000, 2, ""},
		{"no dir", "", 2, 5000, 2, "-dir is required"},
		{"zero jobs", "/tmp/spool", 0, 5000, 2, "-jobs must be positive"},
		{"zero ckpt cadence", "/tmp/spool", 2, 0, 2, "-ckpt-every must be positive"},
		{"negative retries", "/tmp/spool", 2, 5000, -1, "-retries must be non-negative"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := validateFlags(tc.dir, tc.jobs, tc.ckptEvery, tc.retries)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// startDaemon builds a daemon over cfg (fast poll, quiet log) and runs
// serve in the background; the returned stop func drains and waits.
func startDaemon(t *testing.T, cfg config) (*daemon, func()) {
	t.Helper()
	if cfg.Poll == 0 {
		cfg.Poll = 10 * time.Millisecond
	}
	cfg.Log = log.New(io.Discard, "", 0)
	d, err := newDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		d.serve(stop)
		close(done)
	}()
	var once sync.Once
	stopFn := func() {
		once.Do(func() { close(stop) })
		<-done
	}
	t.Cleanup(stopFn)
	return d, stopFn
}

// submit drops src into the daemon's spool as <name>.litmus.
func submit(t *testing.T, root, name, src string) {
	t.Helper()
	if err := os.WriteFile(filepath.Join(root, "spool", name+".litmus"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, timeout time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func exists(path string) bool {
	_, err := os.Stat(path)
	return err == nil
}

// readVerdict loads done/<name>/verdict.json.
func readVerdict(t *testing.T, root, name string) jobVerdict {
	t.Helper()
	data, err := os.ReadFile(filepath.Join(root, "done", name, "verdict.json"))
	if err != nil {
		t.Fatal(err)
	}
	var v jobVerdict
	if err := json.Unmarshal(data, &v); err != nil {
		t.Fatal(err)
	}
	return v
}

// explainRef explores src directly and returns the reference result the
// daemon's verdict must reproduce.
func explainRef(t *testing.T, src string) litmus.Result {
	t.Helper()
	c, err := litmuslang.CompileSource(src)
	if err != nil {
		t.Fatal(err)
	}
	return litmus.Explore(c.Build, litmus.Options{Properties: c.Properties()})
}

// TestDaemonRunsSpooledJobs: the basic contract — drop jobs in spool/,
// verdicts appear in done/, pass/fail decided by the assertion.
func TestDaemonRunsSpooledJobs(t *testing.T) {
	root := t.TempDir()
	d, stop := startDaemon(t, config{Root: root, Jobs: 2, CkptEvery: 100})
	submit(t, root, "fenced", sbFenced)
	submit(t, root, "relaxed", sbRelaxed)

	waitFor(t, 30*time.Second, "both verdicts", func() bool {
		return exists(filepath.Join(root, "done", "fenced", "verdict.json")) &&
			exists(filepath.Join(root, "done", "relaxed", "verdict.json"))
	})
	stop()

	fenced := readVerdict(t, root, "fenced")
	if !fenced.Pass || fenced.Violations != 0 || fenced.Threads != 2 || fenced.States == 0 || len(fenced.Outcomes) == 0 {
		t.Errorf("fenced verdict = %+v, want pass with outcomes", fenced)
	}
	relaxed := readVerdict(t, root, "relaxed")
	if relaxed.Pass || relaxed.Violations == 0 {
		t.Errorf("relaxed verdict = %+v, want failing with violations", relaxed)
	}
	// The claimed job files travel with their verdicts; spool is empty.
	if !exists(filepath.Join(root, "done", "fenced", "job.litmus")) {
		t.Error("job.litmus missing from done/fenced")
	}
	if ents, _ := os.ReadDir(filepath.Join(root, "spool")); len(ents) != 0 {
		t.Errorf("spool not drained: %d entries left", len(ents))
	}
	if got := d.completed.Load(); got != 2 {
		t.Errorf("completed counter = %d, want 2", got)
	}
}

// TestDaemonBadJobFails: an uncompilable job is failed permanently (no
// retries) with the compile error recorded.
func TestDaemonBadJobFails(t *testing.T) {
	root := t.TempDir()
	d, stop := startDaemon(t, config{Root: root, Retries: 3})
	submit(t, root, "garbage", "this is not a litmus file\n")

	errPath := filepath.Join(root, "failed", "garbage", "error.txt")
	waitFor(t, 30*time.Second, "failed/garbage", func() bool { return exists(errPath) })
	stop()

	msg, err := os.ReadFile(errPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "compile") {
		t.Errorf("error.txt = %q, want the compile error", msg)
	}
	if got := d.retried.Load(); got != 0 {
		t.Errorf("retried counter = %d: a permanent failure must not burn retries", got)
	}
	if got := d.failures.Load(); got != 1 {
		t.Errorf("failures counter = %d, want 1", got)
	}
}

// TestDaemonJobTimeout: a job that cannot finish inside -job-timeout is
// interrupted and failed with a timeout error.
func TestDaemonJobTimeout(t *testing.T) {
	root := t.TempDir()
	_, stop := startDaemon(t, config{
		Root:       root,
		JobTimeout: 300 * time.Millisecond,
		CkptEvery:  10000,
	})
	submit(t, root, "big", bigSrc)

	errPath := filepath.Join(root, "failed", "big", "error.txt")
	waitFor(t, 30*time.Second, "failed/big", func() bool { return exists(errPath) })
	stop()

	msg, err := os.ReadFile(errPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(msg), "timed out") {
		t.Errorf("error.txt = %q, want a timeout error", msg)
	}
}

// TestDaemonRetryResumesAfterCrash arms a one-shot crash right after
// the first checkpoint commit: the first attempt dies mid-exploration,
// the retry resumes from the committed snapshot through the backoff
// ladder, and the final verdict matches an uninterrupted reference.
func TestDaemonRetryResumesAfterCrash(t *testing.T) {
	ref := explainRef(t, dekkerSrc)

	root := t.TempDir()
	inj := fault.New(1)
	inj.Arm(fault.CkptCommit, fault.Plan{Prob: 1, Drop: true, MaxFires: 1})
	d, stop := startDaemon(t, config{
		Root:      root,
		Retries:   2,
		CkptEvery: 300,
		Workers:   1,
		Faults:    inj,
	})
	submit(t, root, "dekker", dekkerSrc)

	waitFor(t, 30*time.Second, "done/dekker", func() bool {
		return exists(filepath.Join(root, "done", "dekker", "verdict.json"))
	})
	stop()

	v := readVerdict(t, root, "dekker")
	if v.Attempts != 2 {
		t.Errorf("Attempts = %d, want 2 (crash, then successful resume)", v.Attempts)
	}
	if !v.Resumed {
		t.Error("verdict not marked resumed")
	}
	if v.States != ref.States || v.Violations != ref.Violations || v.Deadlocks != ref.Deadlocks {
		t.Errorf("resumed verdict states/violations/deadlocks = %d/%d/%d, want %d/%d/%d",
			v.States, v.Violations, v.Deadlocks, ref.States, ref.Violations, ref.Deadlocks)
	}
	if got := d.retried.Load(); got != 1 {
		t.Errorf("retried counter = %d, want 1", got)
	}
	if got := d.resumed.Load(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
}

// TestDaemonOrphanResume simulates a daemon killed mid-job: a claimed
// job sits in work/ with a committed checkpoint from a crashed run. The
// next daemon start must pick it up via Resume — not restart it — and
// deliver the reference verdict.
func TestDaemonOrphanResume(t *testing.T) {
	ref := explainRef(t, dekkerSrc)

	root := t.TempDir()
	jobDir := filepath.Join(root, "work", "dekker")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "job.litmus"), []byte(dekkerSrc), 0o644); err != nil {
		t.Fatal(err)
	}

	// Die mid-exploration with a committed checkpoint, exactly as a
	// SIGKILL'd daemon would leave the job.
	c, err := litmuslang.CompileSource(dekkerSrc)
	if err != nil {
		t.Fatal(err)
	}
	inj := fault.New(2)
	inj.Arm(fault.CkptCommit, fault.Plan{Prob: 1, Drop: true, MaxFires: 1})
	dead := litmus.Explore(c.Build, litmus.Options{
		Properties: c.Properties(),
		Workers:    1,
		Checkpoint: litmus.CheckpointOptions{Dir: filepath.Join(jobDir, "ckpt"), EveryStates: 300},
		Faults:     inj,
	})
	if !dead.Crashed {
		t.Fatal("setup: crash point never fired")
	}
	if !exists(filepath.Join(jobDir, "ckpt", "checkpoint.lbmf")) {
		t.Fatal("setup: no committed checkpoint on disk")
	}

	d, stop := startDaemon(t, config{Root: root, CkptEvery: 300, Workers: 1})
	waitFor(t, 30*time.Second, "done/dekker", func() bool {
		return exists(filepath.Join(root, "done", "dekker", "verdict.json"))
	})
	stop()

	v := readVerdict(t, root, "dekker")
	if !v.Resumed {
		t.Error("orphaned job was restarted, want resumed from its checkpoint")
	}
	if v.States != ref.States || v.Violations != ref.Violations {
		t.Errorf("orphan-resumed verdict states/violations = %d/%d, want %d/%d",
			v.States, v.Violations, ref.States, ref.Violations)
	}
	if got := d.resumed.Load(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
}

// TestDaemonDrainParksAndRestartResumes is the graceful-shutdown
// acceptance: a drain interrupts the in-flight job, which checkpoints
// and stays claimed in work/; a fresh daemon on the same spool resumes
// it to completion.
func TestDaemonDrainParksAndRestartResumes(t *testing.T) {
	root := t.TempDir()
	// The state cap keeps both legs bounded; it is part of the options
	// hash, so the restart must use the same value. Under the race
	// detector the engine is an order of magnitude slower, so the cap
	// shrinks to keep the resumed leg inside the test budget.
	maxStates := 400000
	if raceEnabled {
		maxStates = 60000
	}
	cfg := config{Root: root, CkptEvery: 10000, MaxStates: maxStates, Workers: 2}

	_, stop := startDaemon(t, cfg)
	submit(t, root, "big", bigSrc)
	waitFor(t, 30*time.Second, "job claim", func() bool {
		return exists(filepath.Join(root, "work", "big", "job.litmus"))
	})
	// Let it explore a while (well short of the 400k-state cap), then
	// drain: the interrupt barrier writes a final checkpoint.
	time.Sleep(250 * time.Millisecond)
	stop()

	if exists(filepath.Join(root, "done", "big")) {
		t.Fatal("job finished before the drain; the test needs it in flight")
	}
	if !exists(filepath.Join(root, "work", "big", "job.litmus")) {
		t.Fatal("drained job not parked in work/")
	}
	if !exists(filepath.Join(root, "work", "big", "ckpt", "checkpoint.lbmf")) {
		t.Fatal("drained job has no committed checkpoint")
	}

	d2, stop2 := startDaemon(t, cfg)
	waitFor(t, 60*time.Second, "done/big after restart", func() bool {
		return exists(filepath.Join(root, "done", "big", "verdict.json"))
	})
	stop2()

	v := readVerdict(t, root, "big")
	if !v.Resumed {
		t.Error("restarted job did not resume from the drain checkpoint")
	}
	if v.States != maxStates {
		t.Errorf("resumed run explored %d states, want the %d cap", v.States, maxStates)
	}
	if got := d2.resumed.Load(); got != 1 {
		t.Errorf("resumed counter = %d, want 1", got)
	}
}

// TestDaemonHTTPEndpoints exercises /healthz and /metrics directly
// against the handler.
func TestDaemonHTTPEndpoints(t *testing.T) {
	root := t.TempDir()
	d, stop := startDaemon(t, config{Root: root, CkptEvery: 100})
	submit(t, root, "fenced", sbFenced)
	waitFor(t, 30*time.Second, "done/fenced", func() bool {
		return exists(filepath.Join(root, "done", "fenced", "verdict.json"))
	})

	h := d.handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 200 || !strings.Contains(rec.Body.String(), "ok") {
		t.Errorf("/healthz = %d %q, want 200 ok", rec.Code, rec.Body.String())
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("/metrics = %d", rec.Code)
	}
	var m metricsPayload
	if err := json.Unmarshal(rec.Body.Bytes(), &m); err != nil {
		t.Fatalf("/metrics is not JSON: %v\n%s", err, rec.Body.String())
	}
	if m.Claimed != 1 || m.Completed != 1 || m.Draining {
		t.Errorf("metrics = %+v, want 1 claimed, 1 completed, not draining", m)
	}
	if len(m.Engine.Counters) == 0 {
		t.Error("metrics carry no merged engine counters")
	}

	stop() // drain flips /healthz to 503
	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/healthz", nil))
	if rec.Code != 503 {
		t.Errorf("/healthz after drain = %d, want 503", rec.Code)
	}
}

// TestDaemonDrainBroadcast checks registerInterrupt: flags registered
// before the drain are flipped by it, flags registered after start out
// interrupted.
func TestDaemonDrainBroadcast(t *testing.T) {
	d, err := newDaemon(config{Root: t.TempDir(), Log: log.New(io.Discard, "", 0)})
	if err != nil {
		t.Fatal(err)
	}
	var before, after atomic.Bool
	unreg := d.registerInterrupt(&before)
	d.drainAndWait()
	if !before.Load() {
		t.Error("drain did not interrupt a registered job")
	}
	unreg()
	d.registerInterrupt(&after)
	if !after.Load() {
		t.Error("job registered after drain not immediately interrupted")
	}
}
