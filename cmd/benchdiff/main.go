// Command benchdiff compares two bench files written by
// cmd/lbmfbench -bench-json and exits non-zero when the new file
// regresses any metric beyond the threshold, or drops a metric the old
// file had.
//
// Usage:
//
//	benchdiff OLD.json NEW.json
//	benchdiff -threshold 0.05 BENCH_1.json BENCH_2.json
//	benchdiff -warn baseline.json BENCH_2.json   # report only, exit 0
//
// -warn reports regressions without failing; CI uses it for
// cross-machine comparisons where absolute timings are noise but the
// report is still worth reading.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/bench"
)

func main() {
	var (
		threshold = flag.Float64("threshold", 0.10, "relative change treated as a regression (0.10 = 10%)")
		warn      = flag.Bool("warn", false, "report regressions but always exit 0")
	)
	flag.Parse()
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: benchdiff [-threshold 0.10] [-warn] OLD.json NEW.json")
		os.Exit(2)
	}

	old, err := bench.ReadFile(flag.Arg(0))
	check(err)
	cur, err := bench.ReadFile(flag.Arg(1))
	check(err)

	if old.GitSHA != "" || cur.GitSHA != "" {
		fmt.Printf("old: %s (%s)\nnew: %s (%s)\n",
			flag.Arg(0), short(old.GitSHA), flag.Arg(1), short(cur.GitSHA))
	}
	rep := bench.Diff(old, cur, *threshold)
	fmt.Print(rep)

	if rep.Failed() {
		if *warn {
			fmt.Println("benchdiff: regressions found (ignored: -warn)")
			return
		}
		fmt.Println("benchdiff: FAIL")
		os.Exit(1)
	}
	fmt.Println("benchdiff: OK")
}

func short(sha string) string {
	if len(sha) > 12 {
		return sha[:12]
	}
	if sha == "" {
		return "unknown rev"
	}
	return sha
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}
