// Command fencesynth derives fence placements instead of checking them:
// given a fence-free protocol from the registry (or all of them) and its
// safety property, it runs counterexample-guided synthesis over the
// lattice of mfence / l-mfence placements and reports every minimal
// repair plus the cycle-cost-optimal one under the assumed
// primary:secondary execution-frequency ratio. On the Dekker protocol it
// rediscovers the paper's Fig. 3(a) placement — l-mfence guarding the
// primary's flag, full mfence on the secondary — from first principles.
//
// Usage:
//
//	fencesynth                      # synthesize the whole registry
//	fencesynth -problem dekker -v   # one problem, with the minimal frontier
//	fencesynth -kind lmfence        # restrict the placement lattice
//	fencesynth -ratio 1 -json       # symmetric workload, JSON report
//	fencesynth -corpus 100          # repair 100 generated scenarios end-to-end
//
// Corpus mode generates seeded litmus scenarios (skipping the ones that
// declare no assertion), synthesizes a repair for each, splices the
// optimal placement back in, and re-verifies every spliced program with
// the exact engine; the static prefilter and the reorder-bounded screen
// are on by default there (disable with -prefilter=false and
// -reorder-bound 0).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/litmuslang"
	"repro/internal/synth"
)

func main() {
	problem := flag.String("problem", "all", "registry problem to synthesize (dekker|peterson|bakery|sb|mp|all)")
	file := flag.String("file", "", "synthesize fences for a .litmus scenario file (must declare an assertion) instead of the registry")
	kind := flag.String("kind", "both", "fence kinds the synthesizer may place (mfence|lmfence|both)")
	ratio := flag.Float64("ratio", synth.DefaultPrimaryWeight, "assumed primary:secondary execution-frequency ratio for the cost objective")
	workers := flag.Int("workers", 0, "exploration worker-pool size per verification (0 = GOMAXPROCS)")
	maxStates := flag.Int("max-states", 0, "per-candidate exploration budget in states (0 = checker default)")
	verbose := flag.Bool("v", false, "print the full minimal frontier per problem")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON report instead of tables")
	corpus := flag.Int("corpus", 0, "repair N generated scenarios end-to-end (generate → synthesize → splice → exact re-verify) instead of the registry")
	corpusSeed := flag.Int64("corpus-seed", 0, "base generator seed for -corpus scanning")
	corpusJournal := flag.String("corpus-journal", "", "journal file making -corpus resumable: completed scenarios persist as they finish and a rerun restores them instead of re-synthesizing")
	prefilter := flag.Bool("prefilter", false, "seed and prune the lattice with the static critical-cycle analysis (default on under -corpus)")
	reorderBound := flag.Int("reorder-bound", 0, "screen candidates with a reorder-bounded exploration before the exact check; 0 = off (default 2 under -corpus)")
	model := flag.String("model", "", "memory model every candidate is verified under: tso (default) or pso; overrides a file's config { model }")
	flag.Parse()

	mm, err := arch.ParseMemModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fencesynth:", err)
		flag.Usage()
		os.Exit(2)
	}

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set); err != nil {
		fmt.Fprintln(os.Stderr, "fencesynth:", err)
		flag.Usage()
		os.Exit(2)
	}

	opts := synth.Options{
		Workers:       *workers,
		MaxStates:     *maxStates,
		PrimaryWeight: *ratio,
		Prefilter:     *prefilter,
		ReorderBound:  *reorderBound,
	}
	if *corpus > 0 {
		// The accelerators are what make a corpus-size run practical, so
		// they default on there; an explicit flag still wins.
		if !set["prefilter"] {
			opts.Prefilter = true
		}
		if !set["reorder-bound"] {
			opts.ReorderBound = 2
		}
	}
	switch *kind {
	case "both":
	case "mfence":
		opts.AllowMfence = true
	case "lmfence":
		opts.AllowLmfence = true
	default:
		fmt.Fprintf(os.Stderr, "fencesynth: unknown -kind %q (want mfence|lmfence|both)\n", *kind)
		os.Exit(2)
	}

	if *corpus > 0 {
		os.Exit(runCorpus(*corpus, *corpusSeed, *corpusJournal, opts, *verbose, os.Stdout))
	}
	if *file != "" {
		fm := fileModel{model: mm, set: set["model"]}
		os.Exit(runFile(*file, opts, fm, *verbose, *jsonOut, os.Stdout))
	}

	probs := synth.Problems()
	if *problem != "all" {
		p, err := synth.LookupProblem(*problem)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fencesynth:", err)
			os.Exit(2)
		}
		probs = []synth.Problem{p}
	}
	for i := range probs {
		probs[i].Config.Model = mm
	}

	if *jsonOut {
		os.Exit(runJSON(probs, opts))
	}
	os.Exit(runText(probs, opts, *verbose))
}

// validateFlags rejects mutually inconsistent flag combinations before
// any synthesis starts. set holds the names of the flags the user
// passed explicitly (collected via flag.Visit).
func validateFlags(set map[string]bool) error {
	if set["file"] && set["problem"] {
		return fmt.Errorf("-file is incompatible with -problem: the scenario file replaces the registry")
	}
	for _, f := range []string{"file", "problem", "json"} {
		if set["corpus"] && set[f] {
			return fmt.Errorf("-corpus is incompatible with -%s: corpus mode generates its own scenarios and reports a table", f)
		}
	}
	if set["corpus-seed"] && !set["corpus"] {
		return fmt.Errorf("-corpus-seed only applies to -corpus mode")
	}
	if set["corpus-journal"] && !set["corpus"] {
		return fmt.Errorf("-corpus-journal only applies to -corpus mode")
	}
	if set["corpus"] && set["model"] {
		return fmt.Errorf("-model is incompatible with -corpus: generated scenarios are verified under the model their config declares")
	}
	return nil
}

// fileModel carries the -model flag into runFile: the flag overrides
// the scenario file's config { model } only when passed explicitly.
type fileModel struct {
	model arch.MemModel
	set   bool
}

// runCorpus repairs a corpus of generated scenarios end-to-end and
// prints the aggregate table (with -v, one line per scenario). Exit
// codes: 0 when every scenario resolved cleanly, 1 when any errored —
// a spliced repair the exact engine refuted above all.
func runCorpus(n int, seed int64, journal string, opts synth.Options, verbose bool, w io.Writer) int {
	res, err := harness.RunCorpus(harness.CorpusOptions{
		Scenarios: n,
		Seed:      seed,
		Synth:     opts,
		Journal:   journal,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "fencesynth:", err)
		return 2
	}
	if res.Resumed > 0 {
		fmt.Fprintf(w, "resumed %d journaled scenario(s) from %s\n", res.Resumed, journal)
	}
	fmt.Fprintln(w, res.Table())
	if verbose {
		for _, row := range res.Rows {
			switch {
			case row.Err != nil:
				fmt.Fprintf(w, "  seed %-6d %-12s ERROR: %v\n", row.Seed, row.Name, row.Err)
			case row.Unrepairable:
				fmt.Fprintf(w, "  seed %-6d %-12s unrepairable\n", row.Seed, row.Name)
			case row.AlreadySafe:
				fmt.Fprintf(w, "  seed %-6d %-12s already safe (%d states re-verified)\n",
					row.Seed, row.Name, row.ReverifyStates)
			default:
				fmt.Fprintf(w, "  seed %-6d %-12s %d fence(s), cost %.0f (%d states re-verified)\n",
					row.Seed, row.Name, row.Fences, row.Cost, row.ReverifyStates)
			}
		}
	}
	if len(res.Rows) < n {
		fmt.Fprintf(os.Stderr, "fencesynth: collected only %d of %d scenarios after scanning %d seeds\n",
			len(res.Rows), n, res.SeedsScanned)
		return 1
	}
	if res.Errors > 0 {
		fmt.Fprintf(os.Stderr, "fencesynth: %d scenario(s) errored (%d repair contract failures)\n",
			res.Errors, res.ContractFailures)
		return 1
	}
	return 0
}

// runFile compiles a .litmus scenario, synthesizes a repair for its
// declared assertion, and — unless the protocol is unrepairable —
// emits the cost-optimal placement spliced back in as parseable litmus
// source. Exit codes: 0 repaired (or already safe), 1 unrepairable or
// synthesis failure, 2 on I/O or compile errors.
func runFile(path string, opts synth.Options, fm fileModel, verbose, jsonOut bool, w io.Writer) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "fencesynth:", err)
		return 2
	}
	c, err := litmuslang.CompileSource(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "fencesynth: %s: %v\n", path, err)
		return 2
	}
	if fm.set {
		// An explicit -model wins over the file's config { model }; the
		// override lands in c.Config so the repaired render carries it.
		c.Config.Model = fm.model
	}
	prob, err := c.Problem()
	if err != nil {
		fmt.Fprintf(os.Stderr, "fencesynth: %s: %v\n", path, err)
		return 2
	}
	r, err := synth.Synthesize(prob, opts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "fencesynth: %s: %v\n", prob.Name, err)
		return 1
	}

	repaired := ""
	if r.Optimal != nil {
		progs := r.Optimal.Placement.Apply(prob.Programs, opts.Scratch)
		repaired = litmuslang.Render(c.Name, c.Config, progs, c.Assert)
	}

	if jsonOut {
		jp := toJSONProblem(r)
		jp.RepairedSource = repaired
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(jp); err != nil {
			fmt.Fprintln(os.Stderr, "fencesynth:", err)
			return 1
		}
	} else {
		report := &harness.SynthesisResult{Rows: []harness.SynthRow{rowOf(prob.Name, r)}}
		fmt.Fprintln(w, report.Table())
		if verbose {
			printDetailTo(w, r)
		}
		if r.Optimal != nil {
			if len(r.Optimal.Placement) == 0 {
				fmt.Fprintln(w, "already safe: no fences needed")
			} else {
				fmt.Fprintln(w, "repaired protocol (cost-optimal placement spliced in):")
				fmt.Fprintln(w)
				fmt.Fprint(w, repaired)
			}
		}
	}
	if r.Unrepairable {
		if !jsonOut {
			fmt.Fprintln(w, "UNREPAIRABLE — counterexample without store/load reordering:")
			fmt.Fprint(w, indent(r.Counterexample, "  "))
		}
		return 1
	}
	return 0
}

func runText(probs []synth.Problem, opts synth.Options, verbose bool) int {
	report := &harness.SynthesisResult{}
	results := make([]*synth.Result, 0, len(probs))
	failed := false
	for _, prob := range probs {
		r, err := synth.Synthesize(prob, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fencesynth: %s: %v\n", prob.Name, err)
			failed = true
			report.Rows = append(report.Rows, harness.SynthRow{Problem: prob.Name, Err: err})
			continue
		}
		results = append(results, r)
		report.Rows = append(report.Rows, rowOf(prob.Name, r))
	}
	fmt.Println(report.Table())

	if verbose {
		for _, r := range results {
			printDetail(r)
		}
	}
	if failed {
		return 1
	}
	return 0
}

func rowOf(name string, r *synth.Result) harness.SynthRow {
	row := harness.SynthRow{
		Problem:         name,
		Sites:           len(r.Sites),
		Candidates:      r.CandidatesChecked,
		Counterexamples: r.Counterexamples,
		Rounds:          r.Rounds,
		States:          r.StatesExplored,
		Minimal:         len(r.Minimal),
		Unrepairable:    r.Unrepairable,
	}
	if r.Optimal != nil {
		row.Optimal = r.Optimal.Placement.String()
		row.Cost = r.Optimal.Cost
	}
	return row
}

func printDetail(r *synth.Result) { printDetailTo(os.Stdout, r) }

func printDetailTo(w io.Writer, r *synth.Result) {
	fmt.Fprintf(w, "%s: %d candidate sites, %d minimal repair(s)\n", r.Problem, len(r.Sites), len(r.Minimal))
	if r.Unrepairable {
		fmt.Fprintln(w, "  UNREPAIRABLE — counterexample without store/load reordering:")
		fmt.Fprint(w, indent(r.Counterexample, "    "))
		fmt.Fprintln(w)
		return
	}
	for i, c := range r.Minimal {
		marker := " "
		if i == 0 {
			marker = "*" // cost-optimal
		}
		fmt.Fprintf(w, "  %s cost %8.0f  %v\n", marker, c.Cost, c.Placement)
	}
	fmt.Fprintln(w)
}

func indent(s, pad string) string {
	out := ""
	for len(s) > 0 {
		i := len(s)
		if j := indexByte(s, '\n'); j >= 0 {
			i = j + 1
		}
		out += pad + s[:i]
		s = s[i:]
	}
	return out
}

func indexByte(s string, b byte) int {
	for i := 0; i < len(s); i++ {
		if s[i] == b {
			return i
		}
	}
	return -1
}

// jsonAtom is one fence of a placement in the JSON report. Addr is the
// guarded location and so is present exactly for l-mfence atoms; a
// pointer keeps address 0 (e.g. Dekker's primary flag) distinguishable
// from absent.
type jsonAtom struct {
	Thread int     `json:"thread"`
	Instr  int     `json:"instr"`
	Kind   string  `json:"kind"`
	Addr   *uint32 `json:"addr,omitempty"`
}

type jsonPlacement struct {
	Atoms  []jsonAtom `json:"atoms"`
	Cost   float64    `json:"cost"`
	States int        `json:"states"`
}

type jsonProblem struct {
	Problem         string          `json:"problem"`
	Sites           int             `json:"sites"`
	Rounds          int             `json:"rounds"`
	Candidates      int             `json:"candidates_checked"`
	Counterexamples int             `json:"counterexamples"`
	States          int             `json:"states_explored"`
	Unrepairable    bool            `json:"unrepairable"`
	Minimal         []jsonPlacement `json:"minimal"`
	Optimal         *jsonPlacement  `json:"optimal,omitempty"`
	ElapsedSeconds  float64         `json:"elapsed_seconds"`
	// RepairedSource is the optimal placement spliced back into the
	// input and re-rendered as litmus source; -file mode only.
	RepairedSource string `json:"repaired_source,omitempty"`
}

// toJSONProblem flattens one synthesis result into the report shape.
func toJSONProblem(r *synth.Result) jsonProblem {
	jp := jsonProblem{
		Problem:         r.Problem,
		Sites:           len(r.Sites),
		Rounds:          r.Rounds,
		Candidates:      r.CandidatesChecked,
		Counterexamples: r.Counterexamples,
		States:          r.StatesExplored,
		Unrepairable:    r.Unrepairable,
		Minimal:         []jsonPlacement{},
		ElapsedSeconds:  r.Elapsed.Seconds(),
	}
	for _, c := range r.Minimal {
		jp.Minimal = append(jp.Minimal, toJSONPlacement(c))
	}
	if r.Optimal != nil {
		op := toJSONPlacement(*r.Optimal)
		jp.Optimal = &op
	}
	return jp
}

func toJSONPlacement(c synth.Candidate) jsonPlacement {
	jp := jsonPlacement{Cost: c.Cost, States: c.States, Atoms: []jsonAtom{}}
	for _, a := range c.Placement {
		ja := jsonAtom{Thread: a.Thread, Instr: a.Instr, Kind: a.Kind.String()}
		if a.Kind == synth.KindLmfence && a.AddrKnown {
			addr := uint32(a.Addr)
			ja.Addr = &addr
		}
		jp.Atoms = append(jp.Atoms, ja)
	}
	return jp
}

func runJSON(probs []synth.Problem, opts synth.Options) int {
	out := make([]jsonProblem, 0, len(probs))
	failed := false
	for _, prob := range probs {
		r, err := synth.Synthesize(prob, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "fencesynth: %s: %v\n", prob.Name, err)
			failed = true
			continue
		}
		out = append(out, toJSONProblem(r))
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(out); err != nil {
		fmt.Fprintln(os.Stderr, "fencesynth:", err)
		return 1
	}
	if failed {
		return 1
	}
	return 0
}
