package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/litmus"
	"repro/internal/litmuslang"
	"repro/internal/synth"
)

func TestValidateFlags(t *testing.T) {
	if err := validateFlags(map[string]bool{"file": true, "problem": true}); err == nil ||
		!strings.Contains(err.Error(), "-file is incompatible with -problem") {
		t.Errorf("file+problem: got %v, want incompatibility error", err)
	}
	for _, set := range []map[string]bool{
		{"corpus": true, "file": true},
		{"corpus": true, "problem": true},
		{"corpus": true, "json": true},
		{"corpus-seed": true},
	} {
		if err := validateFlags(set); err == nil ||
			!strings.Contains(err.Error(), "corpus") {
			t.Errorf("invalid set %v: got %v, want a corpus incompatibility error", set, err)
		}
	}
	for _, set := range []map[string]bool{
		{},
		{"problem": true, "kind": true, "v": true},
		{"file": true, "kind": true, "ratio": true, "json": true},
		{"corpus": true, "corpus-seed": true, "prefilter": true, "reorder-bound": true},
	} {
		if err := validateFlags(set); err != nil {
			t.Errorf("valid set %v rejected: %v", set, err)
		}
	}
}

// TestRunCorpusHundred is the ISSUE's acceptance bar: `fencesynth
// -corpus` must repair at least 100 generated scenarios end-to-end —
// every non-unrepairable verdict backed by an exact re-verification of
// the spliced program — and exit 0.
func TestRunCorpusHundred(t *testing.T) {
	if testing.Short() {
		t.Skip("100-scenario corpus")
	}
	var out bytes.Buffer
	opts := synth.Options{Prefilter: true, ReorderBound: 2}
	if code := runCorpus(100, 0, "", opts, false, &out); code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "exact re-verify") {
		t.Errorf("corpus table missing the re-verification note:\n%s", got)
	}
}

const sbRelaxed = `litmus "sb"
config { memwords 16 sbdepth 4 }
shared x @ 4, y @ 5
thread "w0" {
  storei [x], 1
  load r0, [y]
  halt
}
thread "w1" {
  storei [y], 1
  load r0, [x]
  halt
}
forbid P0:r0=0 & P1:r0=0
`

func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.litmus")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestRunFileRepairsSB is the end-to-end loop the README advertises: a
// broken scenario goes in, repaired litmus source comes out, and the
// repaired source — recompiled from the emitted text alone — verifies
// safe against its own assertion.
func TestRunFileRepairsSB(t *testing.T) {
	var out bytes.Buffer
	code := runFile(writeScenario(t, sbRelaxed), synth.Options{}, fileModel{}, true, false, &out)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out.String())
	}
	got := out.String()
	if !strings.Contains(got, "repaired protocol") {
		t.Fatalf("output missing repaired source:\n%s", got)
	}

	// The repaired source is everything from the litmus header on.
	i := strings.Index(got, "litmus \"sb\"")
	if i < 0 {
		t.Fatalf("no rendered litmus source in output:\n%s", got)
	}
	c, err := litmuslang.CompileSource(got[i:])
	if err != nil {
		t.Fatalf("repaired source does not recompile: %v\n%s", err, got[i:])
	}
	res := litmus.ExploreSerial(c.Build, litmus.Options{Properties: c.Properties()})
	if res.Violations != 0 || res.Truncated || res.Deadlocks != 0 {
		t.Errorf("repaired SB is not safe: violations=%d truncated=%v deadlocks=%d",
			res.Violations, res.Truncated, res.Deadlocks)
	}
}

func TestRunFileJSONCarriesRepairedSource(t *testing.T) {
	var out bytes.Buffer
	code := runFile(writeScenario(t, sbRelaxed), synth.Options{}, fileModel{}, false, true, &out)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out.String())
	}
	var jp jsonProblem
	if err := json.Unmarshal(out.Bytes(), &jp); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if jp.Problem != "sb" || jp.Optimal == nil || jp.RepairedSource == "" {
		t.Fatalf("report incomplete: %+v", jp)
	}
	if _, err := litmuslang.CompileSource(jp.RepairedSource); err != nil {
		t.Errorf("repaired_source does not recompile: %v", err)
	}
}

func TestRunFileErrors(t *testing.T) {
	if code := runFile(filepath.Join(t.TempDir(), "missing.litmus"), synth.Options{}, fileModel{}, false, false, os.Stderr); code != 2 {
		t.Errorf("missing file: exit code %d, want 2", code)
	}
	noAssert := `thread "a" { storei [0x4], 1
halt }
`
	if code := runFile(writeScenario(t, noAssert), synth.Options{}, fileModel{}, false, false, os.Stderr); code != 2 {
		t.Errorf("assertion-free file: exit code %d, want 2", code)
	}
}
