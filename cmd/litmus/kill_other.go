//go:build !unix

package main

import "os"

// killSelf approximates SIGKILL on platforms without it: exit
// immediately with the conventional kill status, skipping deferred
// functions and flushes.
func killSelf() { os.Exit(137) }
