// Command litmus model-checks the paper's protocols over every TSO
// interleaving the simulated machine admits, and prints the Section 4
// verification report. With -trace it additionally prints the
// counterexample interleaving for the unfenced Dekker protocol — the
// reordering that motivates the whole paper. With -json it emits a
// machine-readable summary (per-test states and aggregate states/sec)
// suitable for tracking checker throughput across changes. -reduction
// explores the catalog with sleep-set partial-order reduction (same
// verdicts, fewer states), and -por prints the reduced-vs-unreduced
// state-count comparison over the protocol suite. -compress stores
// visited states collapse-compressed (interned component tables plus
// index tuples), -membudget caps the visited set's resident bytes and
// spills cold stripes to disk instead of truncating, and -nproc N
// additionally model-checks the N-process bakery and Peterson
// generators under cyclic-symmetry reduction.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"time"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/litmuslang"
	"repro/internal/programs"
	"repro/internal/tso"
)

func main() {
	trace := flag.Bool("trace", false, "print the unfenced Dekker counterexample trace")
	catalog := flag.Bool("catalog", true, "run the classic litmus-test catalog")
	workers := flag.Int("workers", 0, "exploration worker-pool size (0 = GOMAXPROCS)")
	reduction := flag.Bool("reduction", false, "explore the catalog with partial-order reduction")
	por := flag.Bool("por", false, "print the reduced-vs-unreduced comparison over the protocol suite")
	compress := flag.Bool("compress", false, "store visited states collapse-compressed")
	memBudget := flag.Int64("membudget", 0, "visited-set resident-byte budget, spilling cold stripes to disk (0 = unlimited; requires -compress)")
	nproc := flag.Int("nproc", 0, "also model-check the N-process bakery/Peterson generators under symmetry reduction (0 = skip)")
	file := flag.String("file", "", "model-check a single .litmus scenario file instead of the built-in suite")
	jsonOut := flag.Bool("json", false, "emit a machine-readable JSON summary instead of tables")
	checkpoint := flag.String("checkpoint", "", "checkpoint directory for the -file exploration: periodic durable snapshots a killed run resumes from (requires -file)")
	ckptEvery := flag.Int("checkpoint-every", 5000, "checkpoint every N claimed states (requires -checkpoint)")
	resume := flag.Bool("resume", false, "resume the -file exploration from the -checkpoint directory instead of starting fresh")
	crashAfter := flag.Int("crash-after", 0, "SIGKILL this process right after the Nth checkpoint commit — crash-recovery testing only (requires -checkpoint)")
	model := flag.String("model", "", "memory model for the catalog, -file, and -trace explorations: tso (default) or pso")
	flag.Parse()

	mm, err := arch.ParseMemModel(*model)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		flag.Usage()
		os.Exit(2)
	}

	set := make(map[string]bool)
	flag.Visit(func(f *flag.Flag) { set[f.Name] = true })
	if err := validateFlags(set, mm); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		flag.Usage()
		os.Exit(2)
	}

	catOpts := litmus.Options{
		Workers:   *workers,
		Reduction: *reduction,
		Collapse:  *compress || *memBudget > 0,
		MemBudget: *memBudget,
		Model:     mm,
	}

	if *file != "" {
		fc := fileCkpt{dir: *checkpoint, every: *ckptEvery, resume: *resume, crashAfter: *crashAfter}
		os.Exit(runFile(*file, catOpts, fc, set["model"], *jsonOut, os.Stdout))
	}

	if *jsonOut {
		os.Exit(runJSON(*catalog, catOpts))
	}

	res := harness.RunTheoremsWorkers(*workers)
	fmt.Println(res.Table())

	failed := !res.AllPass()
	if *catalog {
		failed = printCatalog(catOpts) || failed
	}
	if *por {
		pr := harness.RunPOR(*workers)
		fmt.Println(pr.Table())
		failed = failed || !pr.AllPass()
	}
	if *nproc > 0 {
		failed = printNProc(*nproc, catOpts) || failed
	}
	if *trace {
		printCounterexample(*workers, mm)
	}
	if failed {
		fmt.Fprintln(os.Stderr, "litmus: verification FAILED")
		os.Exit(1)
	}
}

// validateFlags rejects mutually inconsistent flag combinations up
// front, before any exploration starts. set holds the names of the
// flags the user passed explicitly (collected via flag.Visit), which
// distinguishes "-catalog=true" spelled out from the same default.
func validateFlags(set map[string]bool, model arch.MemModel) error {
	if set["membudget"] && !set["compress"] {
		return fmt.Errorf("-membudget requires -compress: the disk-spill store holds collapse-compressed states, so a budget without compression has nothing to spill")
	}
	if model != arch.TSO {
		if set["reduction"] {
			return fmt.Errorf("-reduction is incompatible with -model %s: sleep-set reduction assumes TSO's FIFO drain enabledness and the %s engine runs unreduced", model, model)
		}
		if set["por"] {
			return fmt.Errorf("-por is incompatible with -model %s: the reduced-vs-unreduced comparison only exists for TSO", model)
		}
		if set["nproc"] {
			return fmt.Errorf("-nproc is incompatible with -model %s: the N-process generators rely on partial-order reduction, which the %s engine does not support", model, model)
		}
	}
	if set["file"] {
		for _, name := range []string{"nproc", "trace", "por", "catalog"} {
			if set[name] {
				return fmt.Errorf("-file is incompatible with -%s: the scenario file replaces the built-in suite", name)
			}
		}
	}
	if set["checkpoint"] && !set["file"] {
		return fmt.Errorf("-checkpoint requires -file: only single-scenario explorations are checkpointed")
	}
	for _, name := range []string{"resume", "checkpoint-every", "crash-after"} {
		if set[name] && !set["checkpoint"] {
			return fmt.Errorf("-%s requires -checkpoint: there is no snapshot directory without it", name)
		}
	}
	return nil
}

// fileCkpt carries the -checkpoint flag family into runFile.
type fileCkpt struct {
	dir        string // checkpoint directory ("" = checkpointing off)
	every      int    // snapshot cadence in claimed states
	resume     bool   // resume from dir instead of exploring fresh
	crashAfter int    // SIGKILL after the Nth commit (0 = never)
}

// fileSummary is the -file -json output shape.
type fileSummary struct {
	Name        string         `json:"name"`
	Threads     int            `json:"threads"`
	States      int            `json:"states"`
	Transitions int            `json:"transitions"`
	Outcomes    map[string]int `json:"outcomes"`
	Deadlocks   int            `json:"deadlocks"`
	Violations  int            `json:"violations"`
	Property    string         `json:"property,omitempty"`
	Pass        bool           `json:"pass"`
	Resumed     bool           `json:"resumed,omitempty"`
}

// runFile compiles and model-checks one .litmus scenario, reporting its
// outcome set and (when the file declares an assertion) the verdict.
// The return value is the process exit code: 0 clean, 1 when the
// assertion is violated or the exploration truncated, 2 on I/O or
// compile errors (including an unusable checkpoint under -resume).
func runFile(path string, opts litmus.Options, fc fileCkpt, modelSet bool, jsonOut bool, w io.Writer) int {
	src, err := os.ReadFile(path)
	if err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 2
	}
	c, err := litmuslang.CompileSource(string(src))
	if err != nil {
		fmt.Fprintf(os.Stderr, "litmus: %s: %v\n", path, err)
		return 2
	}
	opts.Properties = c.Properties()
	// The file's config { model ... } selects the engine unless -model
	// was passed explicitly, in which case the flag wins.
	if !modelSet {
		opts.Model = c.Config.Model
	}
	if fc.dir != "" {
		opts.Checkpoint = litmus.CheckpointOptions{Dir: fc.dir, EveryStates: fc.every}
		if fc.crashAfter > 0 {
			opts.Checkpoint.OnCommit = func(n int) {
				if n >= fc.crashAfter {
					killSelf()
				}
			}
		}
	}
	var res litmus.Result
	if fc.resume {
		res, err = litmus.Resume(fc.dir, c.Build, opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "litmus: resuming from %s: %v\n", fc.dir, err)
			return 2
		}
	} else {
		res = litmus.Explore(c.Build, opts)
	}
	pass := res.Violations == 0 && !res.Truncated

	if jsonOut {
		sum := fileSummary{
			Name:        c.Name,
			Threads:     len(c.Programs),
			States:      res.States,
			Transitions: res.Transitions,
			Outcomes:    make(map[string]int, len(res.Outcomes)),
			Deadlocks:   res.Deadlocks,
			Violations:  res.Violations,
			Property:    c.PropertyDoc,
			Pass:        pass,
			Resumed:     fc.resume,
		}
		for o, n := range res.Outcomes {
			sum.Outcomes[string(o)] = n
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		if err := enc.Encode(sum); err != nil {
			fmt.Fprintln(os.Stderr, "litmus:", err)
			return 1
		}
	} else {
		fmt.Fprintf(w, "%s: %d threads, %d states, %d transitions, %d deadlocks\n",
			c.Name, len(c.Programs), res.States, res.Transitions, res.Deadlocks)
		fmt.Fprintf(w, "quiesced outcomes (%d distinct):\n", len(res.Outcomes))
		for _, o := range res.SortedOutcomes() {
			fmt.Fprintf(w, "  %-40s ×%d\n", o, res.Outcomes[o])
		}
		if c.HasProperty() {
			verdict := "PASS"
			if res.Violations > 0 {
				verdict = fmt.Sprintf("FAIL (%d violating states)", res.Violations)
			}
			fmt.Fprintf(w, "property %q: %s\n", c.PropertyDoc, verdict)
		} else {
			fmt.Fprintln(w, "no assertion declared: outcome report only")
		}
		if res.Truncated {
			fmt.Fprintln(w, "WARNING: exploration truncated — results are a lower bound")
		}
	}
	if !pass {
		return 1
	}
	return 0
}

// printCatalog runs the classic litmus tests and reports per-test
// verdicts; it returns whether any failed.
func printCatalog(opts litmus.Options) bool {
	if opts.Model == arch.PSO {
		fmt.Println("Classic litmus tests under PSO (per-address store buffers):")
	} else {
		fmt.Println("Classic litmus tests (TSO ordering principles 1-4 + store atomicity):")
	}
	failed := false
	for _, ct := range litmus.Catalog() {
		res, err := litmus.RunCatalogTestOpts(ct, opts)
		verdict := "PASS"
		if err != nil {
			verdict = "FAIL: " + err.Error()
			failed = true
		}
		expect := "forbidden"
		if ct.Allowed(opts.Model) {
			expect = "allowed"
		}
		fmt.Printf("  %-11s %6d states  %9.0f states/sec  relaxed outcome %-9s  %s\n",
			ct.Name, res.States, res.StatesPerSec(), expect, verdict)
	}
	fmt.Println()
	return failed
}

// printNProc model-checks the N-process bakery and Peterson generators
// under cyclic-symmetry reduction and reports verdicts; it returns
// whether any check failed. Partial-order reduction is always on here —
// the unreduced interleaving space is intractable past n=3 — and the
// -compress/-membudget settings carry over so the section exercises the
// same representation stack the scaling tests pin.
func printNProc(n int, catOpts litmus.Options) bool {
	fmt.Printf("N-process generators at n=%d (cyclic-symmetry reduction + POR):\n", n)
	failed := false
	for _, gen := range []func(int, programs.DekkerVariant) *programs.SymProtocol{
		programs.BakeryN, programs.PetersonN,
	} {
		for _, v := range []programs.DekkerVariant{
			programs.DekkerNoFence, programs.DekkerMfence, programs.DekkerLmfence,
		} {
			sp := gen(n, v)
			wantViolation := v == programs.DekkerNoFence
			res := litmus.Explore(sp.Build, litmus.Options{
				Properties: []litmus.Property{litmus.MutualExclusion},
				Workers:    catOpts.Workers,
				Reduction:  true,
				Collapse:   catOpts.Collapse,
				MemBudget:  catOpts.MemBudget,
				Symmetry:   sp.Sym,
				// The unfenced rows only need the counterexample; the safe
				// rows need the whole orbit space, which outgrows the default
				// cap past n=3.
				StopOnViolation: wantViolation,
				MaxStates:       64_000_000,
			})
			verdict := "PASS"
			switch {
			case res.Truncated:
				verdict = "FAIL: truncated (raise -membudget or state cap)"
				failed = true
			case wantViolation && res.Violations == 0:
				verdict = "FAIL: missed mutual-exclusion violation"
				failed = true
			case !wantViolation && res.Violations > 0:
				verdict = "FAIL: false mutual-exclusion violation"
				failed = true
			case res.Deadlocks > 0:
				verdict = fmt.Sprintf("FAIL: %d deadlocks", res.Deadlocks)
				failed = true
			}
			expect := "safe"
			if wantViolation {
				expect = "violates"
			}
			fmt.Printf("  %-18s %9d orbits  %9.0f states/sec  expect %-8s  %s\n",
				sp.Name, res.States, res.StatesPerSec(), expect, verdict)
		}
	}
	fmt.Println()
	return failed
}

// jsonTest is one model-checked test in the -json summary.
type jsonTest struct {
	Name         string  `json:"name"`
	States       int     `json:"states"`
	Transitions  int     `json:"transitions"`
	Outcomes     int     `json:"outcomes"`
	Violations   int     `json:"violations"`
	StatesPerSec float64 `json:"states_per_sec"`
	Pass         bool    `json:"pass"`
}

// jsonSummary is the -json output: per-test rows plus aggregate checker
// throughput, for BENCH_*.json-style tracking across PRs.
type jsonSummary struct {
	Workers        int        `json:"workers"`
	GOMAXPROCS     int        `json:"gomaxprocs"`
	Reduction      bool       `json:"reduction"`
	Theorems       []jsonTest `json:"theorems"`
	Catalog        []jsonTest `json:"catalog"`
	TotalStates    int        `json:"total_states"`
	ElapsedSeconds float64    `json:"elapsed_seconds"`
	StatesPerSec   float64    `json:"states_per_sec"`
	AllPass        bool       `json:"all_pass"`
}

func runJSON(catalog bool, opts litmus.Options) int {
	// Report the resolved pool size, not the raw flag (0 = GOMAXPROCS).
	resolved := opts.Workers
	if resolved <= 0 {
		resolved = runtime.GOMAXPROCS(0)
	}
	sum := jsonSummary{
		Workers:    resolved,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
		Reduction:  opts.Reduction,
		AllPass:    true,
	}
	start := time.Now()

	th := harness.RunTheoremsWorkers(opts.Workers)
	for _, row := range th.Rows {
		sum.Theorems = append(sum.Theorems, jsonTest{
			Name:       row.Name,
			States:     row.States,
			Outcomes:   row.Outcomes,
			Violations: row.Violations,
			Pass:       row.Pass,
		})
		sum.TotalStates += row.States
		sum.AllPass = sum.AllPass && row.Pass
	}
	if catalog {
		for _, ct := range litmus.Catalog() {
			res, err := litmus.RunCatalogTestOpts(ct, opts)
			sum.Catalog = append(sum.Catalog, jsonTest{
				Name:         ct.Name,
				States:       res.States,
				Transitions:  res.Transitions,
				Outcomes:     len(res.Outcomes),
				Violations:   res.Violations,
				StatesPerSec: res.StatesPerSec(),
				Pass:         err == nil,
			})
			sum.TotalStates += res.States
			sum.AllPass = sum.AllPass && err == nil
		}
	}
	sum.ElapsedSeconds = time.Since(start).Seconds()
	if sum.ElapsedSeconds > 0 {
		sum.StatesPerSec = float64(sum.TotalStates) / sum.ElapsedSeconds
	}

	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(sum); err != nil {
		fmt.Fprintln(os.Stderr, "litmus:", err)
		return 1
	}
	if !sum.AllPass {
		return 1
	}
	return 0
}

func printCounterexample(workers int, model arch.MemModel) {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4
	cfg.Model = model
	p0, p1 := programs.DekkerPair(programs.DekkerNoFence)
	build := func() *tso.Machine { return tso.NewMachine(cfg, p0, p1) }
	r := litmus.Explore(build, litmus.Options{
		Properties:      []litmus.Property{litmus.MutualExclusion},
		StopOnViolation: true,
		Workers:         workers,
		Model:           model,
	})
	if r.Violations == 0 {
		fmt.Println("no violation found (unexpected)")
		return
	}
	fmt.Println("Counterexample: unfenced Dekker, both threads in the critical section")
	fmt.Println("(the load commits while the older flag store is still in the store buffer):")
	fmt.Println()
	fmt.Print(litmus.FormatTrace(build, r.ViolationTrace))
}
