// Command litmus model-checks the paper's protocols over every TSO
// interleaving the simulated machine admits, and prints the Section 4
// verification report. With -trace it additionally prints the
// counterexample interleaving for the unfenced Dekker protocol — the
// reordering that motivates the whole paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/litmus"
	"repro/internal/programs"
	"repro/internal/tso"
)

func main() {
	trace := flag.Bool("trace", false, "print the unfenced Dekker counterexample trace")
	catalog := flag.Bool("catalog", true, "run the classic litmus-test catalog")
	flag.Parse()

	res := harness.RunTheorems()
	fmt.Println(res.Table())

	failed := !res.AllPass()
	if *catalog {
		failed = printCatalog() || failed
	}
	if *trace {
		printCounterexample()
	}
	if failed {
		fmt.Fprintln(os.Stderr, "litmus: verification FAILED")
		os.Exit(1)
	}
}

// printCatalog runs the classic litmus tests and reports per-test
// verdicts; it returns whether any failed.
func printCatalog() bool {
	fmt.Println("Classic litmus tests (TSO ordering principles 1-4 + store atomicity):")
	failed := false
	for _, ct := range litmus.Catalog() {
		res, err := litmus.RunCatalogTest(ct)
		verdict := "PASS"
		if err != nil {
			verdict = "FAIL: " + err.Error()
			failed = true
		}
		expect := "forbidden"
		if ct.AllowedUnderTSO {
			expect = "allowed"
		}
		fmt.Printf("  %-11s %6d states  relaxed outcome %-9s  %s\n",
			ct.Name, res.States, expect, verdict)
	}
	fmt.Println()
	return failed
}

func printCounterexample() {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4
	p0, p1 := programs.DekkerPair(programs.DekkerNoFence)
	build := func() *tso.Machine { return tso.NewMachine(cfg, p0, p1) }
	r := litmus.Explore(build, litmus.Options{
		Properties:           []litmus.Property{litmus.MutualExclusion},
		StopAtFirstViolation: true,
	})
	if r.Violations == 0 {
		fmt.Println("no violation found (unexpected)")
		return
	}
	fmt.Println("Counterexample: unfenced Dekker, both threads in the critical section")
	fmt.Println("(the load commits while the older flag store is still in the store buffer):")
	fmt.Println()
	fmt.Print(litmus.FormatTrace(build, r.ViolationTrace))
}
