//go:build unix

package main

import (
	"os"
	"syscall"
)

// killSelf dies the hard way — SIGKILL, no deferred functions, no
// flushes — so -crash-after exercises real crash recovery: the only
// surviving state is what the checkpoint already committed. The
// conventional 137 exit is what the kill-and-resume CI smoke asserts.
func killSelf() {
	syscall.Kill(os.Getpid(), syscall.SIGKILL)
	os.Exit(137) // unreachable unless the signal is somehow swallowed
}
