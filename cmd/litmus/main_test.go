package main

import (
	"bytes"
	"encoding/json"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/litmus"
)

func TestValidateFlags(t *testing.T) {
	cases := []struct {
		name    string
		set     []string
		wantErr string // substring of the error, "" = valid
	}{
		{"empty", nil, ""},
		{"suite flags", []string{"trace", "por", "nproc", "workers"}, ""},
		{"membudget with compress", []string{"membudget", "compress"}, ""},
		{"membudget alone", []string{"membudget"}, "-membudget requires -compress"},
		{"file alone", []string{"file"}, ""},
		{"file with engine knobs", []string{"file", "workers", "reduction", "compress", "json"}, ""},
		{"file with nproc", []string{"file", "nproc"}, "-file is incompatible with -nproc"},
		{"file with trace", []string{"file", "trace"}, "-file is incompatible with -trace"},
		{"file with por", []string{"file", "por"}, "-file is incompatible with -por"},
		{"file with explicit catalog", []string{"file", "catalog"}, "-file is incompatible with -catalog"},
		{"file with membudget alone", []string{"file", "membudget"}, "-membudget requires -compress"},
		{"file with checkpoint", []string{"file", "checkpoint"}, ""},
		{"full checkpoint family", []string{"file", "checkpoint", "checkpoint-every", "resume", "crash-after"}, ""},
		{"checkpoint without file", []string{"checkpoint"}, "-checkpoint requires -file"},
		{"resume without checkpoint", []string{"file", "resume"}, "-resume requires -checkpoint"},
		{"cadence without checkpoint", []string{"file", "checkpoint-every"}, "-checkpoint-every requires -checkpoint"},
		{"crash-after without checkpoint", []string{"file", "crash-after"}, "-crash-after requires -checkpoint"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			set := make(map[string]bool, len(tc.set))
			for _, f := range tc.set {
				set[f] = true
			}
			err := validateFlags(set, arch.TSO)
			switch {
			case tc.wantErr == "" && err != nil:
				t.Fatalf("unexpected error: %v", err)
			case tc.wantErr != "" && err == nil:
				t.Fatalf("expected error containing %q, got nil", tc.wantErr)
			case tc.wantErr != "" && !strings.Contains(err.Error(), tc.wantErr):
				t.Fatalf("error %q does not contain %q", err, tc.wantErr)
			}
		})
	}
}

// writeScenario drops src into a temp .litmus file and returns its path.
func writeScenario(t *testing.T, src string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "scenario.litmus")
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

const sbFenced = `litmus "sb+mfence"
config { memwords 16 sbdepth 4 }
shared x @ 4, y @ 5
thread "w0" {
  storei [x], 1
  mfence
  load r0, [y]
  halt
}
thread "w1" {
  storei [y], 1
  mfence
  load r0, [x]
  halt
}
forbid P0:r0=0 & P1:r0=0
`

const sbRelaxed = `litmus "sb"
config { memwords 16 sbdepth 4 }
shared x @ 4, y @ 5
thread "w0" {
  storei [x], 1
  load r0, [y]
  halt
}
thread "w1" {
  storei [y], 1
  load r0, [x]
  halt
}
forbid P0:r0=0 & P1:r0=0
`

func TestRunFilePass(t *testing.T) {
	var out bytes.Buffer
	code := runFile(writeScenario(t, sbFenced), litmus.Options{}, fileCkpt{}, false, false, &out)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out.String())
	}
	got := out.String()
	for _, want := range []string{"sb+mfence: 2 threads", "PASS", "quiesced outcomes"} {
		if !strings.Contains(got, want) {
			t.Errorf("output missing %q:\n%s", want, got)
		}
	}
}

func TestRunFileViolation(t *testing.T) {
	var out bytes.Buffer
	code := runFile(writeScenario(t, sbRelaxed), litmus.Options{}, fileCkpt{}, false, false, &out)
	if code != 1 {
		t.Fatalf("exit code %d, want 1\noutput:\n%s", code, out.String())
	}
	if !strings.Contains(out.String(), "FAIL") {
		t.Errorf("output missing FAIL verdict:\n%s", out.String())
	}
}

func TestRunFileJSON(t *testing.T) {
	var out bytes.Buffer
	code := runFile(writeScenario(t, sbFenced), litmus.Options{}, fileCkpt{}, false, true, &out)
	if code != 0 {
		t.Fatalf("exit code %d, want 0\noutput:\n%s", code, out.String())
	}
	var sum fileSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if sum.Name != "sb+mfence" || sum.Threads != 2 || !sum.Pass || sum.States == 0 {
		t.Errorf("summary fields wrong: %+v", sum)
	}
	// Both fenced threads must be able to observe each other's store:
	// the relaxed outcome is absent, the three SC outcomes are present.
	if len(sum.Outcomes) != 3 {
		t.Errorf("fenced SB has %d outcomes, want 3: %v", len(sum.Outcomes), sum.Outcomes)
	}
}

func TestRunFileErrors(t *testing.T) {
	if code := runFile(filepath.Join(t.TempDir(), "missing.litmus"), litmus.Options{}, fileCkpt{}, false, false, os.Stderr); code != 2 {
		t.Errorf("missing file: exit code %d, want 2", code)
	}
	if code := runFile(writeScenario(t, "thread { jmp @nowhere }"), litmus.Options{}, fileCkpt{}, false, false, os.Stderr); code != 2 {
		t.Errorf("compile error: exit code %d, want 2", code)
	}
}

// TestRunFileCheckpointResume drives the -checkpoint/-resume flag
// plumbing end to end in-process: a checkpointed run leaves a final
// snapshot, and -resume reproduces its summary exactly from that
// snapshot instead of re-exploring.
func TestRunFileCheckpointResume(t *testing.T) {
	scenario := writeScenario(t, sbRelaxed)
	ckpt := filepath.Join(t.TempDir(), "ckpt")

	var ref bytes.Buffer
	if code := runFile(scenario, litmus.Options{}, fileCkpt{dir: ckpt, every: 50}, false, true, &ref); code != 1 {
		t.Fatalf("checkpointed run: exit code %d, want 1 (forbidden outcome reached)\n%s", code, ref.String())
	}
	var refSum fileSummary
	if err := json.Unmarshal(ref.Bytes(), &refSum); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if code := runFile(scenario, litmus.Options{}, fileCkpt{dir: ckpt, every: 50, resume: true}, false, true, &out); code != 1 {
		t.Fatalf("resumed run: exit code %d, want 1\n%s", code, out.String())
	}
	var sum fileSummary
	if err := json.Unmarshal(out.Bytes(), &sum); err != nil {
		t.Fatal(err)
	}
	if !sum.Resumed {
		t.Error("resumed summary not marked resumed")
	}
	sum.Resumed = refSum.Resumed
	if !reflect.DeepEqual(sum, refSum) {
		t.Errorf("resumed summary diverges:\nresumed:   %+v\nreference: %+v", sum, refSum)
	}

	// Resuming a directory with no checkpoint is an operator error, not
	// a silent fresh run.
	empty := filepath.Join(t.TempDir(), "empty")
	if code := runFile(scenario, litmus.Options{}, fileCkpt{dir: empty, resume: true}, false, true, io.Discard); code != 2 {
		t.Errorf("resume from empty dir: exit code %d, want 2", code)
	}
}

// TestRunFileOnExamples sweeps the checked-in corpus through the same
// entry point the CLI uses; every example must compile and check clean.
func TestRunFileOnExamples(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "examples", "*.litmus"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no examples found: %v", err)
	}
	for _, f := range files {
		f := f
		t.Run(filepath.Base(f), func(t *testing.T) {
			want := 0
			// The unfenced protocol variants are checked-in violation
			// demonstrations; the CLI reports those as exit 1.
			if strings.Contains(f, "nofence") {
				want = 1
			}
			var out bytes.Buffer
			if code := runFile(f, litmus.Options{Reduction: true}, fileCkpt{}, false, false, &out); code != want {
				t.Errorf("exit code %d, want %d\noutput:\n%s", code, want, out.String())
			}
		})
	}
}
