// Command lbmfsim runs programs on the simulated TSO machine and prints
// instruction-level traces, including the LE/ST micro-op sequence of
// Fig. 3(b) and the link-break protocol between the cache controllers.
//
// Usage:
//
//	lbmfsim -prog lmfence-trace     # Fig. 3(b), primary running alone
//	lbmfsim -prog lmfence-contended # a secondary read breaks the link
//	lbmfsim -prog dekker            # the full asymmetric Dekker protocol
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/harness"
	"repro/internal/mesi"
	"repro/internal/programs"
	"repro/internal/storebuf"
	"repro/internal/tso"
)

func main() {
	prog := flag.String("prog", "lmfence-trace", "program: lmfence-trace|lmfence-contended|dekker")
	flag.Parse()

	switch *prog {
	case "lmfence-trace":
		fmt.Println("Fig. 3(b): l-mfence(&L1, 1) executed by a primary running alone")
		fmt.Println()
		fmt.Print(harness.Fig3bTrace())
	case "lmfence-contended":
		runContended()
	case "dekker":
		runDekker()
	default:
		fmt.Fprintf(os.Stderr, "lbmfsim: unknown program %q\n", *prog)
		os.Exit(1)
	}
}

type stdoutTracer struct{}

func (stdoutTracer) OnExec(p arch.ProcID, pc int, in tso.Instr) {
	note := ""
	if in.Note != "" {
		note = "   ; " + in.Note
	}
	fmt.Printf("%v  %2d: %-24v%s\n", p, pc, in, note)
}

func (stdoutTracer) OnDrain(p arch.ProcID, e storebuf.Entry) {
	fmt.Printf("%v      drain [0x%x] <- %d (store completes)\n", p, uint32(e.Addr), int64(e.Val))
}

func (stdoutTracer) OnLinkBreak(p arch.ProcID, addr arch.Addr, reason mesi.GuardReason) {
	fmt.Printf("%v      *** link to 0x%x broken (%v): flush store buffer, reply to controller\n",
		p, uint32(addr), reason)
}

func runContended() {
	fmt.Println("A secondary read of the guarded location breaks the primary's link:")
	fmt.Println()
	cfg := arch.DefaultConfig()
	m := tso.NewMachine(cfg,
		programs.LmfenceTrace(),
		programs.RoundTripSecondary(1))
	m.Tracer = stdoutTracer{}
	// Interleave by hand: primary runs the l-mfence, then the secondary
	// reads while the guarded store is still buffered.
	for i := 0; i < 4; i++ {
		m.ExecStep(0)
	}
	for !m.Procs[1].Halted {
		m.ExecStep(1)
	}
	for !m.Procs[0].Halted {
		m.ExecStep(0)
	}
	fmt.Printf("\nfinal: L1=%d (secondary observed %d)\n",
		m.Mem(programs.AddrL1), m.Procs[1].Regs[programs.RegObs])
}

func runDekker() {
	fmt.Println("Asymmetric Dekker protocol (Fig. 3(a)), one full interleaved run:")
	fmt.Println()
	cfg := arch.DefaultConfig()
	p0, p1 := programs.DekkerPair(programs.DekkerLmfence)
	m := tso.NewMachine(cfg, p0, p1)
	m.Tracer = stdoutTracer{}
	r := tso.NewRunner(m)
	if _, err := r.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "lbmfsim: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("\nCS violation: %v (must be false)\n", m.CSViolation)
}
