// Package repro_test holds the benchmark harness: one testing.B bench
// per paper table/figure (see DESIGN.md's experiment index), plus the
// ablation benches for the design choices DESIGN.md calls out. Run:
//
//	go test -bench=. -benchmem
//
// Reported custom metrics carry the paper-facing numbers (ratios,
// round-trip costs); EXPERIMENTS.md records a full run.
package repro_test

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/biaslock"
	"repro/internal/core"
	"repro/internal/litmus"
	"repro/internal/packetproc"
	"repro/internal/programs"
	"repro/internal/rwlock"
	"repro/internal/sched"
	"repro/internal/tso"
	"repro/internal/workloads"
)

// --- §1: the serial Dekker slowdown (simulator cycles) ---------------

func BenchmarkDekkerSerialSim(b *testing.B) {
	variants := []programs.DekkerVariant{
		programs.DekkerNoFence, programs.DekkerMfence, programs.DekkerLmfence,
	}
	const iters = 5000
	for _, v := range variants {
		b.Run(v.String(), func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := tso.NewMachine(arch.DefaultConfig(), programs.DekkerLoop(v, iters, 3))
				c, err := tso.NewRunner(m).RunProc(0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles)/iters, "cycles/iter")
		})
	}
}

// BenchmarkDekkerSerialReal measures the real-goroutine primary fast
// path per fence mode (the paper's 4-7x claim, Go edition).
func BenchmarkDekkerSerialReal(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeNoFence, core.ModeSymmetric, core.ModeAsymmetricHW} {
		b.Run(mode.String(), func(b *testing.B) {
			d := core.NewDekker(mode, core.DefaultCosts())
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				d.PrimaryEnter()
				d.PrimaryExit()
			}
		})
	}
}

// --- Section 4: the model checker (theorem verification cost) --------

func BenchmarkTheoremsDekkerLmfence(b *testing.B) {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4
	p0, p1 := programs.DekkerPair(programs.DekkerLmfence)
	build := func() *tso.Machine { return tso.NewMachine(cfg, p0, p1) }
	var states int
	for i := 0; i < b.N; i++ {
		res := litmus.Explore(build, litmus.Options{Properties: []litmus.Property{litmus.MutualExclusion}})
		if res.Violations != 0 {
			b.Fatal("mutual exclusion violated")
		}
		states = res.States
	}
	b.ReportMetric(float64(states), "states")
}

// --- The exploration engine itself: serial reference vs parallel -----

// exploreSpaces are the two state spaces the engine benchmarks run on:
// the Dekker l-mfence protocol (2 procs, link machinery exercised) and
// IRIW (4 procs, the widest catalog test).
func exploreSpaces() map[string]func() *tso.Machine {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4
	d0, d1 := programs.DekkerPair(programs.DekkerLmfence)

	iriwCfg := cfg
	iriwCfg.Procs = 4
	x, y := programs.AddrX, programs.AddrY
	w0 := tso.NewBuilder("iriw-w0").StoreI(x, 1).Halt().Build()
	w1 := tso.NewBuilder("iriw-w1").StoreI(y, 1).Halt().Build()
	r0 := tso.NewBuilder("iriw-r0").Load(1, x).Load(2, y).Halt().Build()
	r1 := tso.NewBuilder("iriw-r1").Load(1, y).Load(2, x).Halt().Build()

	return map[string]func() *tso.Machine{
		"dekker": func() *tso.Machine { return tso.NewMachine(cfg, d0, d1) },
		"iriw":   func() *tso.Machine { return tso.NewMachine(iriwCfg, w0, w1, r0, r1) },
	}
}

// exploreBench measures one engine on one space, reporting states/sec
// and two bytes-per-state figures so `-benchmem` runs are directly
// comparable across engines. The first run of an exploration pays
// one-time warm-up allocations (engine structures, and under collapse
// compression the interned component tables, which are exactly the
// memory the compression trades the per-state savings against), so
// B/state is the steady-state figure — warm-up excluded — and
// B/state-total keeps the old everything-included semantics.
func exploreBench(b *testing.B, build func() *tso.Machine, run func() litmus.Result) {
	var states int
	var coldStart, before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&coldStart)
	warm := run()
	if warm.Truncated || warm.Deadlocks != 0 {
		b.Fatalf("truncated=%v deadlocks=%d", warm.Truncated, warm.Deadlocks)
	}
	runtime.ReadMemStats(&before)
	start := time.Now()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := run()
		if res.Truncated || res.Deadlocks != 0 {
			b.Fatalf("truncated=%v deadlocks=%d", res.Truncated, res.Deadlocks)
		}
		states = res.States
	}
	b.StopTimer()
	elapsed := time.Since(start)
	runtime.ReadMemStats(&after)
	total := float64(states) * float64(b.N)
	b.ReportMetric(total/elapsed.Seconds(), "states/sec")
	b.ReportMetric(float64(after.TotalAlloc-before.TotalAlloc)/total, "B/state")
	b.ReportMetric(float64(after.TotalAlloc-coldStart.TotalAlloc)/
		(total+float64(states)), "B/state-total")
	b.ReportMetric(float64(states), "states")
	_ = build
}

// BenchmarkExploreSerial is the reference single-threaded engine (string
// visited keys, clone-per-child, trace copies) — the baseline the
// parallel engine is measured against.
func BenchmarkExploreSerial(b *testing.B) {
	for name, build := range exploreSpaces() {
		build := build
		b.Run(name, func(b *testing.B) {
			exploreBench(b, build, func() litmus.Result {
				return litmus.ExploreSerial(build, litmus.Options{})
			})
		})
	}
}

// BenchmarkExploreParallel is the work-stealing engine at 1 and 4
// workers (hash-sharded visited set, parent-pointer traces, machine
// recycling). Compare states/sec and B/state against ExploreSerial.
func BenchmarkExploreParallel(b *testing.B) {
	for name, build := range exploreSpaces() {
		build := build
		for _, workers := range []int{1, 4} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers%d", name, workers), func(b *testing.B) {
				exploreBench(b, build, func() litmus.Result {
					return litmus.Explore(build, litmus.Options{Workers: workers})
				})
			})
		}
	}
}

// BenchmarkExploreCollapse is the parallel engine with the collapsed
// visited set (interned component tables + index-tuple keys). The
// steady-state B/state is the number to compare against
// BenchmarkExploreParallel: the component tables amortize across runs,
// so the per-state figure shows the encoding's net win.
func BenchmarkExploreCollapse(b *testing.B) {
	for name, build := range exploreSpaces() {
		build := build
		for _, workers := range []int{1, 4} {
			workers := workers
			b.Run(fmt.Sprintf("%s/workers%d", name, workers), func(b *testing.B) {
				exploreBench(b, build, func() litmus.Result {
					return litmus.Explore(build, litmus.Options{Workers: workers, Collapse: true})
				})
			})
		}
	}
}

// --- Fig. 5(a): serial ACilk-5 / Cilk-5, one sub-bench per benchmark --

func fig5Bench(b *testing.B, parallel bool) {
	procs := 1
	if parallel {
		procs = 4
	}
	for _, spec := range workloads.All() {
		spec := spec
		for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW} {
			name := spec.Name + "/cilk5"
			if mode.Asymmetric() {
				name = spec.Name + "/acilk5"
			}
			b.Run(name, func(b *testing.B) {
				var spawns, fences, signals uint64
				for i := 0; i < b.N; i++ {
					inst := spec.Make(workloads.ScaleTest)
					rt := sched.New(procs, mode, core.DefaultCosts())
					rt.Run(inst.Root)
					if err := inst.Verify(); err != nil {
						b.Fatal(err)
					}
					s := rt.Stats()
					spawns, fences, signals = s.Spawns, s.Fences, s.Signals
				}
				b.ReportMetric(float64(spawns), "spawns")
				b.ReportMetric(float64(fences), "fences")
				b.ReportMetric(float64(signals), "signals")
			})
		}
	}
}

func BenchmarkFig5aSerial(b *testing.B)   { fig5Bench(b, false) }
func BenchmarkFig5bParallel(b *testing.B) { fig5Bench(b, true) }

// --- Fig. 6: lock read throughput --------------------------------------

func lockBench(b *testing.B, l *rwlock.Lock, threads, ratio int) {
	var arr [4]int64
	var stop atomic.Bool
	var reads atomic.Int64
	writeEvery := ratio / threads
	if writeEvery <= 0 {
		writeEvery = 1
	}
	var wg sync.WaitGroup
	for t := 0; t < threads; t++ {
		r := l.NewReader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			var sink int64
			for n := 0; !stop.Load(); n++ {
				if n%writeEvery == writeEvery-1 {
					r.LockWrite()
					for j := range arr {
						arr[j]++
					}
					r.UnlockWrite()
					continue
				}
				r.Lock()
				for j := range arr {
					sink += arr[j]
				}
				r.Unlock()
				local++
			}
			reads.Add(local)
			_ = sink
		}()
	}
	// Let the clients run for the benchmark's duration: b.N units of
	// 100us each, so `-benchtime` scales the measurement window.
	b.ResetTimer()
	time.Sleep(time.Duration(b.N) * 100 * time.Microsecond)
	b.StopTimer()
	stop.Store(true)
	wg.Wait()
	elapsed := time.Duration(b.N) * 100 * time.Microsecond
	b.ReportMetric(float64(reads.Load())/elapsed.Seconds(), "reads/s")
}

func fig6Bench(b *testing.B, heuristic bool) {
	for _, ratio := range []int{300, 10000} {
		for _, threads := range []int{2, 8} {
			for _, variant := range []string{"srw", "arw"} {
				name := fmt.Sprintf("%dto1/%dthreads/%s", ratio, threads, variant)
				b.Run(name, func(b *testing.B) {
					var l *rwlock.Lock
					if variant == "srw" {
						l = rwlock.New(core.ModeSymmetric, core.DefaultCosts())
					} else if heuristic {
						l = rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts(), rwlock.WithWaitingHeuristic(0))
					} else {
						l = rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts())
					}
					lockBench(b, l, threads, ratio)
				})
			}
		}
	}
}

func BenchmarkFig6aARW(b *testing.B)     { fig6Bench(b, false) }
func BenchmarkFig6bARWPlus(b *testing.B) { fig6Bench(b, true) }

// --- §5 overhead: serialization round trips ----------------------------

func BenchmarkRoundTrip(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
		b.Run(mode.String(), func(b *testing.B) {
			f := core.NewLocationFence(mode, core.DefaultCosts())
			stop := make(chan struct{})
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				for {
					select {
					case <-stop:
						return
					default:
						f.Poll()
						runtime.Gosched() // keep the handshake live on single-CPU hosts
					}
				}
			}()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				f.Serialize()
			}
			b.StopTimer()
			close(stop)
			wg.Wait()
		})
	}
}

// BenchmarkRoundTripSim measures the LE/ST round trip on the simulator
// (the paper's ~150-cycle claim).
func BenchmarkRoundTripSim(b *testing.B) {
	const iters = 500
	var perBreak float64
	for i := 0; i < b.N; i++ {
		cfg := arch.DefaultConfig()
		m := tso.NewMachine(cfg,
			programs.RoundTripPrimary(iters),
			programs.RoundTripSecondary(iters))
		if _, err := tso.NewRunner(m).Run(); err != nil {
			b.Fatal(err)
		}
		breaks := m.Procs[0].Stats.LinkBreaks
		if breaks == 0 {
			b.Fatal("no links broken")
		}
		perBreak = float64(m.Procs[1].Clock) / float64(breaks)
	}
	b.ReportMetric(perBreak, "secondary-cycles/break")
}

// --- Ablations (DESIGN.md) ---------------------------------------------

// Ablation 1: store-buffer depth — the mfence drain cost grows with
// occupancy, so deeper buffers make program-based fences dearer.
func BenchmarkAblationStoreBufferDepth(b *testing.B) {
	for _, depth := range []int{2, 8, 32} {
		b.Run(fmt.Sprintf("depth%d", depth), func(b *testing.B) {
			var cycles int64
			const iters = 5000
			for i := 0; i < b.N; i++ {
				cfg := arch.DefaultConfig()
				cfg.StoreBufferDepth = depth
				m := tso.NewMachine(cfg, programs.DekkerLoop(programs.DekkerMfence, iters, 6))
				c, err := tso.NewRunner(m).RunProc(0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles)/iters, "cycles/iter")
		})
	}
}

// Ablation 2: the ARW+ spin budget — too small degenerates to ARW
// (signals), too large delays writers.
func BenchmarkAblationSpinBudget(b *testing.B) {
	for _, budget := range []int{16, 512, 16384} {
		b.Run(fmt.Sprintf("budget%d", budget), func(b *testing.B) {
			l := rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts(), rwlock.WithWaitingHeuristic(budget))
			lockBench(b, l, 4, 1000)
			b.ReportMetric(float64(l.Stats.SignalsSent.Load()), "signals")
		})
	}
}

// Ablation 3: signal round-trip cost sweep — where asymmetric
// synchronization stops paying (the paper's core argument: 150-cycle
// LE/ST wins where 10,000-cycle signals lose).
func BenchmarkAblationSignalCost(b *testing.B) {
	for _, rt := range []int{150, 2000, 10000, 50000} {
		b.Run(fmt.Sprintf("cost%d", rt), func(b *testing.B) {
			cost := core.DefaultCosts()
			cost.SignalRoundTrip = rt
			spec, err := workloads.ByName("fib")
			if err != nil {
				b.Fatal(err)
			}
			for i := 0; i < b.N; i++ {
				inst := spec.Make(workloads.ScaleTest)
				rtm := sched.New(4, core.ModeAsymmetricSW, cost)
				rtm.Run(inst.Root)
				if err := inst.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// Ablation 4: the double-flush corner — back-to-back l-mfences with
// different guarded locations force an extra store-buffer flush
// (single-link hardware), vs same-location re-arming which is free.
func BenchmarkAblationSecondLmfence(b *testing.B) {
	build := func(sameAddr bool) *tso.Program {
		second := programs.AddrL2
		if sameAddr {
			second = programs.AddrL1
		}
		bb := tso.NewBuilder("double")
		bb.LoadI(programs.RegCounter, 2000)
		bb.Label("top")
		bb.Lmfence(programs.AddrL1, 1, programs.RegScratch)
		bb.Lmfence(second, 1, programs.RegScratch)
		bb.AddI(programs.RegCounter, programs.RegCounter, -1)
		bb.Bne(programs.RegCounter, 0, "top")
		bb.Halt()
		return bb.Build()
	}
	for _, same := range []bool{true, false} {
		name := "different-location"
		if same {
			name = "same-location"
		}
		b.Run(name, func(b *testing.B) {
			var cycles int64
			for i := 0; i < b.N; i++ {
				m := tso.NewMachine(arch.DefaultConfig(), build(same))
				c, err := tso.NewRunner(m).RunProc(0)
				if err != nil {
					b.Fatal(err)
				}
				cycles = c
			}
			b.ReportMetric(float64(cycles)/2000, "cycles/iter")
		})
	}
}

// Ablation 5: steal-poll granularity — how often the asymmetric victim
// checks its mailbox trades victim overhead against thief latency.
func BenchmarkAblationPollInterval(b *testing.B) {
	spec, err := workloads.ByName("fib")
	if err != nil {
		b.Fatal(err)
	}
	for _, k := range []int{1, 16, 256} {
		b.Run(fmt.Sprintf("every%d", k), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				inst := spec.Make(workloads.ScaleTest)
				rt := sched.New(2, core.ModeAsymmetricHW, core.DefaultCosts(), sched.WithPollInterval(k))
				rt.Run(inst.Root)
				if err := inst.Verify(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkBiasedLock measures the bias holder's fast path per fence
// mode (the Java-monitor motivation of the paper's introduction).
func BenchmarkBiasedLock(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
		b.Run(mode.String(), func(b *testing.B) {
			m := biaslock.New(mode, core.DefaultCosts())
			o := m.NewOwner()
			if !o.ClaimBias() {
				b.Fatal("claim failed")
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				o.Lock()
				o.Unlock()
			}
		})
	}
}

// BenchmarkPacketProc measures the packet-processing application (the
// paper's fourth motivating example) per fence mode at 95% locality.
func BenchmarkPacketProc(b *testing.B) {
	for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
		b.Run(mode.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				e, err := packetproc.NewEngine(packetproc.Config{
					Handlers:          2,
					PacketsPerHandler: 5000,
					LocalityPermille:  950,
					Mode:              mode,
					Cost:              core.DefaultCosts(),
					Seed:              7,
				})
				if err != nil {
					b.Fatal(err)
				}
				st := e.Run()
				if st.TotalCounts != st.Packets {
					b.Fatal("conservation violated")
				}
			}
		})
	}
}
