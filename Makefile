# Repo tooling. The benchmark targets emit standard `go test -bench`
# output, which benchstat consumes directly:
#
#   make bench-litmus > new.txt   (on two commits)
#   benchstat old.txt new.txt

GO ?= go
COUNT ?= 5
BENCH_SCALE ?= test
BENCH_BASELINE ?= BENCH_baseline.json

.PHONY: test race bench bench-litmus bench-por bench-compress litmus-json synth bench-json bench-diff chaos crash fuzz

# Per-target budget for the coverage-guided fuzzing runs.
FUZZTIME ?= 30s

# Seeds for the chaos fault schedules (comma-separated).
CHAOS_SEEDS ?= 1,2,3

test:
	$(GO) build ./... && $(GO) test ./...

# The model checker's striped visited set and result merging are the
# concurrency-sensitive parts; validate them under the race detector.
race:
	$(GO) test -race ./internal/litmus/

bench:
	$(GO) test -run '^$$' -bench . -benchmem .

# Checker-throughput benchmarks only: serial reference engine vs the
# parallel work-stealing engine on the Dekker and IRIW state spaces.
# Reports states/sec and B/state; benchstat-compatible.
bench-litmus:
	$(GO) test -run '^$$' -bench 'BenchmarkExplore' -benchmem -count $(COUNT) .

# Partial-order reduction: the differential tests (reduced exploration
# must reproduce the unreduced reference semantics) under the race
# detector, then the reduced-vs-unreduced state-count table.
bench-por:
	$(GO) test -race -run 'Reduction|Visited' ./internal/litmus/
	$(GO) run ./cmd/litmus -por -reduction

# Representation-level scaling: the collapse/symmetry/spill
# differential tests under the race detector, then the catalog plus the
# 3-process generators through the whole stack under a deliberately
# starved 1MB budget so cold stripes actually spill mid-run.
bench-compress:
	$(GO) test -race -run 'Collapse|Symmetry|Spill|Budget|Compress' -short ./internal/litmus/ ./internal/tso/
	$(GO) run ./cmd/litmus -compress -membudget 1048576 -nproc 3

# Machine-readable verification summary (states, states/sec per test);
# redirect into BENCH_litmus.json to track checker throughput across PRs.
litmus-json:
	$(GO) run ./cmd/litmus -json

# Record a machine-readable bench run (versioned schema: git SHA,
# GOMAXPROCS, scale, per-experiment Sample summaries + obs snapshots)
# into the next free BENCH_<n>.json. Override the scale with
# BENCH_SCALE=small|medium|paper.
bench-json:
	$(GO) run ./cmd/lbmfbench -exp all -scale $(BENCH_SCALE) -bench-json auto

# Compare the newest BENCH_<n>.json against the committed baseline;
# exits non-zero on >10% regressions or dropped metrics.
bench-diff:
	$(GO) build -o /tmp/benchdiff ./cmd/benchdiff
	/tmp/benchdiff $(BENCH_BASELINE) $$(ls -v BENCH_[0-9]*.json | tail -1)

# Chaos: seeded fault-injection suites under the race detector, then
# the chaos experiment (paper invariants under injected stalls, drops,
# freezes, and a killed primary) across the configured seeds.
chaos:
	$(GO) test -race -run 'Chaos|Fault|Stall|Abandon|Watchdog|Close|Starvation|Deadline' ./internal/harness/ ./internal/signals/ ./internal/sched/ ./internal/fault/
	$(GO) run ./cmd/lbmfbench -exp chaos -scale test -faults $(CHAOS_SEEDS)

# Crash recovery: the checkpoint/resume, corpus-journal, and job-runner
# suites under the race detector, then the litmus_resume experiment
# (checkpoint overhead + exact-recovery contract).
crash:
	$(GO) test -race -run 'Checkpoint|Resume|Interrupt|Spill|Journal|Corpus|Daemon' ./internal/litmus/ ./internal/harness/ ./cmd/litmusd/
	$(GO) run ./cmd/lbmfbench -exp litmus_resume -scale test

# Coverage-guided fuzzing: the .litmus parser/compiler/renderer round
# trip, then the differential engine matrix over generated scenarios.
# Each target runs its seed corpus (testdata/fuzz/) plus FUZZTIME of
# new coverage-guided inputs; raise FUZZTIME for a longer hunt.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime $(FUZZTIME) ./internal/litmuslang/
	$(GO) test -run '^$$' -fuzz FuzzDifferential -fuzztime $(FUZZTIME) ./internal/litmusgen/

# Counterexample-guided fence synthesis over the protocol registry,
# printing the minimal frontier per problem. The dekker row must show
# the Fig. 3(a) asymmetric placement as cost-optimal.
synth:
	$(GO) run ./cmd/fencesynth -v
