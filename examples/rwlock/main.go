// RWLock: the paper's second application — a reader-biased multiple-
// readers single-writer lock under a read-mostly workload, comparing the
// symmetric SRW baseline against the asymmetric ARW and ARW+ designs
// (Fig. 6's microbenchmark at one configuration).
//
// Run with:
//
//	go run ./examples/rwlock [-threads 4] [-ratio 1000] [-dur 500ms]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/rwlock"
)

func main() {
	threads := flag.Int("threads", 4, "reader threads")
	ratio := flag.Int("ratio", 1000, "read:write ratio (N:1)")
	dur := flag.Duration("dur", 300*time.Millisecond, "measurement duration")
	flag.Parse()

	fmt.Printf("read-mostly workload: %d threads, %d:1 read:write, %v per lock\n\n",
		*threads, *ratio, *dur)

	type cfg struct {
		name string
		mk   func() *rwlock.Lock
	}
	cfgs := []cfg{
		{"SRW (symmetric fence)", func() *rwlock.Lock {
			return rwlock.New(core.ModeSymmetric, core.DefaultCosts())
		}},
		{"ARW (signals)", func() *rwlock.Lock {
			return rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts())
		}},
		{"ARW+ (waiting heuristic)", func() *rwlock.Lock {
			return rwlock.New(core.ModeAsymmetricSW, core.DefaultCosts(), rwlock.WithWaitingHeuristic(0))
		}},
	}

	var base float64
	for i, c := range cfgs {
		tput, st := measure(c.mk(), *threads, *ratio, *dur)
		if i == 0 {
			base = tput
		}
		fmt.Printf("%-26s %12.0f reads/s  normalized=%.2f  writes=%d signals=%d acks-in-time=%d\n",
			c.name, tput, tput/base,
			st.Writes.Load(), st.SignalsSent.Load(), st.AcksInTime.Load())
	}
	fmt.Println("\nnormalized > 1: the asymmetric lock out-reads the symmetric baseline.")
}

func measure(l *rwlock.Lock, threads, ratio int, d time.Duration) (float64, *rwlock.Stats) {
	var arr [4]int64
	var stop atomic.Bool
	var reads atomic.Int64
	writeEvery := ratio / threads
	if writeEvery <= 0 {
		writeEvery = 1
	}
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		r := l.NewReader()
		wg.Add(1)
		go func() {
			defer wg.Done()
			local := int64(0)
			var sink int64
			for n := 0; !stop.Load(); n++ {
				if n%writeEvery == writeEvery-1 {
					r.LockWrite()
					for j := range arr {
						arr[j]++
					}
					r.UnlockWrite()
					continue
				}
				r.Lock()
				for j := range arr {
					sink += arr[j]
				}
				r.Unlock()
				local++
			}
			reads.Add(local)
			_ = sink
		}()
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	return float64(reads.Load()) / d.Seconds(), &l.Stats
}
