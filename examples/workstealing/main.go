// Workstealing: the ACilk-5 vs Cilk-5 comparison on two of the paper's
// benchmarks (fib — spawn-overhead bound, and matmul — compute bound),
// showing how the location-based fence removes the victim's per-pop
// fence and what the steal path costs instead.
//
// Run with:
//
//	go run ./examples/workstealing [-procs 4] [-scale small]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workloads"
)

func main() {
	procs := flag.Int("procs", 2, "workers")
	scaleName := flag.String("scale", "test", "workload scale: test|small|medium")
	flag.Parse()

	scale := map[string]workloads.Scale{
		"test": workloads.ScaleTest, "small": workloads.ScaleSmall, "medium": workloads.ScaleMedium,
	}[*scaleName]

	for _, name := range []string{"fib", "matmul"} {
		spec, err := workloads.ByName(name)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%s (input scale %v, %d workers)\n", spec.Name, scale, *procs)

		var baseline time.Duration
		for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
			inst := spec.Make(scale)
			rt := sched.New(*procs, mode, core.DefaultCosts())
			start := time.Now()
			rt.Run(inst.Root)
			elapsed := time.Since(start)
			if err := inst.Verify(); err != nil {
				panic(err)
			}
			if mode == core.ModeSymmetric {
				baseline = elapsed
			}
			s := rt.Stats()
			fmt.Printf("  %-10v %10v  rel=%.3f  spawns=%-8d fences=%-8d signals=%-6d steals=%d\n",
				mode, elapsed.Round(time.Microsecond),
				float64(elapsed)/float64(baseline),
				s.Spawns, s.Fences, s.Signals, s.Steals)
		}
		fmt.Println()
	}
	fmt.Println("rel < 1: the asymmetric (ACilk-5) runtime beats the fenced (Cilk-5) baseline.")
}
