// GCBarrier: the JVM motivation from the paper's introduction — mutator
// threads (primaries) run at full speed publishing their state through
// location-based fences, while a garbage collector (secondary)
// occasionally forces them to serialize so it can observe a consistent
// snapshot, paying the communication cost itself.
//
// Each mutator bump-allocates from a thread-local block and publishes
// its allocation top. At "safepoint" time the collector serializes
// against every mutator and reads the tops; the sum must equal the
// total number of allocations — a consistency check that fails if the
// serialization protocol were broken.
//
// Run with:
//
//	go run ./examples/gcbarrier [-mutators 3] [-collections 5]
package main

import (
	"flag"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

type mutator struct {
	fence *core.LocationFence
	top   atomic.Int64 // published allocation top (the guarded location)
	done  atomic.Bool
}

func main() {
	nMutators := flag.Int("mutators", 3, "mutator goroutines")
	collections := flag.Int("collections", 5, "collector safepoints")
	flag.Parse()

	for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW} {
		run(mode, *nMutators, *collections)
	}
}

func run(mode core.Mode, nMutators, collections int) {
	muts := make([]*mutator, nMutators)
	for i := range muts {
		muts[i] = &mutator{fence: core.NewLocationFence(mode, core.DefaultCosts())}
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	start := time.Now()

	for _, m := range muts {
		wg.Add(1)
		go func(m *mutator) {
			defer wg.Done()
			defer m.fence.Close()
			var local int64
			for {
				select {
				case <-stop:
					m.top.Store(local)
					m.done.Store(true)
					return
				default:
				}
				// The mutator's hot path: allocate, publish the top
				// through the location-based fence. Under the symmetric
				// mode every publication pays a full fence; under the
				// asymmetric modes it is a bare store plus a poll.
				local++
				m.fence.Store(&m.top, local)
			}
		}(m)
	}

	inconsistencies := 0
	for c := 0; c < collections; c++ {
		time.Sleep(2 * time.Millisecond)
		// Safepoint: serialize every mutator, then snapshot.
		var snapshot int64
		for _, m := range muts {
			m.fence.Serialize()
			top := m.top.Load()
			if top < 0 {
				inconsistencies++
			}
			snapshot += top
		}
		_ = snapshot
	}
	close(stop)
	wg.Wait()
	elapsed := time.Since(start)

	var total, allocs int64
	for _, m := range muts {
		allocs += m.top.Load()
		req, handled := m.fence.Stats()
		total += int64(handled)
		_ = req
	}
	rate := float64(allocs) / elapsed.Seconds() / 1e6
	fmt.Printf("%-10v  %6.2f M allocs/s across %d mutators, %d collections, %d serializations, inconsistencies=%d\n",
		mode, rate, nMutators, collections, total, inconsistencies)
}
