// Packetproc: the paper's network-processing motivation — each handler
// thread owns the flow tables for its group of source addresses
// (primary fast path), and occasionally a handler must update a table
// owned by a different handler (secondary slow path). The location-
// based fence removes the per-packet fence from the owner's path; the
// occasional cross-thread update pays the round trip.
//
// Run with:
//
//	go run ./examples/packetproc [-handlers 4] [-packets 200000] [-locality 950]
package main

import (
	"flag"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/packetproc"
)

func main() {
	handlers := flag.Int("handlers", 4, "processing goroutines")
	packets := flag.Int("packets", 200_000, "packets per handler")
	locality := flag.Int("locality", 950, "per-mille probability a packet is handled locally")
	flag.Parse()

	fmt.Printf("%d handlers, %d packets each, %.1f%% local traffic\n\n",
		*handlers, *packets, float64(*locality)/10)

	var base time.Duration
	for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
		e, err := packetproc.NewEngine(packetproc.Config{
			Handlers:          *handlers,
			PacketsPerHandler: *packets,
			LocalityPermille:  *locality,
			Mode:              mode,
			Cost:              core.DefaultCosts(),
			Seed:              7,
		})
		if err != nil {
			panic(err)
		}
		start := time.Now()
		st := e.Run()
		elapsed := time.Since(start)
		if st.TotalCounts != st.Packets {
			panic(fmt.Sprintf("conservation violated: %d counts for %d packets",
				st.TotalCounts, st.Packets))
		}
		if mode == core.ModeSymmetric {
			base = elapsed
		}
		rate := float64(st.Packets) / elapsed.Seconds() / 1e6
		fmt.Printf("%-10v %8.2f Mpkt/s  rel=%.3f  local=%d remote=%d\n",
			mode, rate, float64(elapsed)/float64(base), st.LocalOps, st.RemoteOps)
	}
	fmt.Println("\nrel < 1: the location-based fence beats the program-based fence.")
}
