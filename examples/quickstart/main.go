// Quickstart: the location-based memory fence in its smallest setting —
// one primary goroutine publishing to a guarded location, one secondary
// occasionally reading it, via the asymmetric Dekker protocol of
// Fig. 3(a).
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
)

func main() {
	fmt.Println("Asymmetric Dekker protocol: primary vs secondary critical sections")
	fmt.Println()

	for _, mode := range []core.Mode{core.ModeSymmetric, core.ModeAsymmetricSW, core.ModeAsymmetricHW} {
		run(mode)
	}
}

func run(mode core.Mode) {
	d := core.NewDekker(mode, core.DefaultCosts())

	const primaryIters = 300_000
	const secondaryIters = 50
	shared := 0 // protected by the Dekker critical section

	var wg sync.WaitGroup
	start := time.Now()

	wg.Add(1)
	go func() { // the primary: enters its critical section constantly
		defer wg.Done()
		for i := 0; i < primaryIters; i++ {
			d.PrimaryEnter()
			shared++
			d.PrimaryExit()
		}
		d.Fence().Close() // release any waiting secondary
	}()

	wg.Add(1)
	go func() { // the secondary: interferes occasionally
		defer wg.Done()
		for i := 0; i < secondaryIters; i++ {
			d.SecondaryEnter()
			shared++
			d.SecondaryExit()
			time.Sleep(100 * time.Microsecond)
		}
	}()

	wg.Wait()
	elapsed := time.Since(start)

	requests, handled := d.Fence().Stats()
	fmt.Printf("%-10v  %8.1f ns/primary-iter   shared=%d   serializations: %d requested / %d handled\n",
		mode, float64(elapsed.Nanoseconds())/primaryIters, shared, requests, handled)
}
