// Litmusdekker: machine-check the Dekker protocol in its three fence
// disciplines over every TSO interleaving, and print the counterexample
// that breaks the unfenced variant — the store-buffer reordering that
// motivates the whole paper.
//
// Run with:
//
//	go run ./examples/litmusdekker
package main

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/litmus"
	"repro/internal/programs"
	"repro/internal/tso"
)

func main() {
	cfg := arch.DefaultConfig()
	cfg.Procs = 2
	cfg.MemWords = 16
	cfg.StoreBufferDepth = 4

	for _, v := range []programs.DekkerVariant{
		programs.DekkerNoFence,
		programs.DekkerMfence,
		programs.DekkerLmfence,
		programs.DekkerLmfenceMirrored,
	} {
		p0, p1 := programs.DekkerPair(v)
		build := func() *tso.Machine { return tso.NewMachine(cfg, p0, p1) }
		res := litmus.Explore(build, litmus.Options{
			Properties: []litmus.Property{litmus.MutualExclusion},
		})
		verdict := "mutual exclusion HOLDS"
		if res.Violations > 0 {
			verdict = fmt.Sprintf("mutual exclusion VIOLATED (%d states)", res.Violations)
		}
		fmt.Printf("dekker-%-18s %6d states  %4d outcomes  -> %s\n",
			v, res.States, len(res.Outcomes), verdict)

		if v == programs.DekkerNoFence && res.Violations > 0 {
			fmt.Println("\n  counterexample (the load commits while the flag store sits in the store buffer):")
			for _, line := range splitLines(litmus.FormatTrace(build, res.ViolationTrace)) {
				fmt.Println("    " + line)
			}
			fmt.Println()
		}
	}
	fmt.Println("\nTheorem 7 (machine-checked): the asymmetric Dekker protocol with")
	fmt.Println("l-mfence admits no interleaving with both threads in the critical section.")
}

func splitLines(s string) []string {
	var out []string
	start := 0
	for i := 0; i < len(s); i++ {
		if s[i] == '\n' {
			out = append(out, s[start:i])
			start = i + 1
		}
	}
	if start < len(s) {
		out = append(out, s[start:])
	}
	return out
}
